"""Figure 11 (and the Section 5.1 headline numbers).

IPC improvement over the no-prefetch baseline for:

* TCP-8K — 8 KB shared PHT (the realistic design point);
* TCP-8M — 8 MB PHT with private per-set history (the idealised
  no-sharing reference);
* DBCP-2M — the dead-block correlating prefetcher with a 2 MB table.

The paper's headline: DBCP ≈ 7%, TCP-8K ≈ 14%, TCP-8M ≈ 15% suite-wide,
i.e. an 8 KB tag-correlating table beats a 2 MB address+PC-correlating
one.  The per-benchmark sharing story also lives here: some benchmarks
prefer the shared PHT (the paper names applu, mgrid, swim), others the
private one (facerec, gcc, art, mcf, ammp).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.base import ExperimentResult, suite_order
from repro.sim import SimulationConfig, simulate
from repro.util.stats import geometric_mean
from repro.workloads import Scale

__all__ = ["CONFIG_LABELS", "run"]

CONFIG_LABELS = ("tcp-8k", "tcp-8m", "dbcp-2m")


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    series: Dict[str, Dict[str, float]] = {label: {} for label in CONFIG_LABELS}
    storage: Dict[str, int] = {}
    rows = []
    for name in names:
        base = simulate(name, SimulationConfig.baseline(), scale)
        row: list = [name]
        for label in CONFIG_LABELS:
            result = simulate(name, SimulationConfig.for_prefetcher(label), scale)
            improvement = result.improvement_over(base)
            series[label][name] = improvement
            storage[label] = result.prefetcher_storage_bytes
            row.append(improvement)
        rows.append(row)

    geomeans = {
        label: (geometric_mean(1.0 + v / 100.0 for v in values.values()) - 1.0) * 100.0
        for label, values in series.items()
    }
    rows.append(["geomean"] + [geomeans[label] for label in CONFIG_LABELS])
    series["geomean"] = geomeans

    prefers_private = [
        name
        for name in names
        if series["tcp-8m"][name] > series["tcp-8k"][name] + 1.0
    ]
    notes = [
        "Suite-wide (geomean) improvement: "
        + ", ".join(f"{label} {geomeans[label]:+.1f}%" for label in CONFIG_LABELS)
        + "  (paper: TCP-8K ~14%, TCP-8M ~15%, DBCP ~7%).",
        "Table budgets: "
        + ", ".join(f"{label} {storage[label] / 1024:.0f}KB" for label in CONFIG_LABELS)
        + " — the headline claim is the budget asymmetry.",
        "Benchmarks preferring private per-set history (TCP-8M): "
        + (", ".join(prefers_private) if prefers_private else "none")
        + " (paper: facerec, gcc, art, mcf, ammp).",
    ]
    return ExperimentResult(
        experiment="fig11",
        title="IPC improvement: TCP-8K vs TCP-8M vs DBCP-2M",
        headers=["benchmark"] + [f"{label} %" for label in CONFIG_LABELS],
        rows=rows,
        series=series,
        notes=notes,
    )
