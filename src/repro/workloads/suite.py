"""The 26-benchmark SPEC CPU2000-analogue suite.

Each benchmark is a composition of the kernels in
:mod:`repro.workloads.kernels`, parameterised to mimic the memory
behaviour the paper documents for its SPEC2000 namesake:

* **memory-boundedness** (Figure 1 ordering) via the fraction of
  accesses that miss L1/L2 and the footprint relative to the 1 MB L2;
* **tag-locality class** (Figures 2–7): how many distinct 32 KB tag
  regions are touched, whether per-set tag sequences repeat, and
  whether the *same* sequence appears across many sets (array sweeps)
  or each set sees private sequences (pointer chases, hashed
  structures);
* **sequence regularity** (Figure 5): crafty/twolf are dominated by
  unlearnable random scans, the scientific codes by strongly
  correlated sweeps;
* **strided share** (Figure 15): swim's single-array update phases
  produce strided per-set tag sequences.

Three layout/continuity rules matter for the reproduction:

1. Sweeps carry a cumulative ``start_offset`` across phase rounds, so a
   3 MB sweep really covers 3 MB instead of re-touching its first
   chunk — footprints larger than the 1 MB L2 are what create
   prefetchable L2 misses.
2. Pointer chases reuse one fixed permutation across rounds; the lap
   repetition is the signal correlation prefetchers learn.  Chases
   give every cache set *private* tag history, the class where the
   paper finds TCP-8M beats the shared TCP-8K.
3. Array bases are offset by small non-32 KB amounts: streams do not
   conflict in the direct-mapped L1, but their per-set tag patterns
   stay shared across sets (TCP-8K's favourite food).  fma3d's tiny
   loop uses exact 32 KB alignment to create the classic conflict-miss
   train that stays L2-resident.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.util.rng import make_rng
from repro.workloads import io as trace_io
from repro.workloads.kernels import (
    TraceBuilder,
    hash_table_walk,
    hot_loop,
    interleaved_sweep,
    pointer_chase,
    random_region,
    sequential_bursts,
)
from repro.workloads.trace import Scale, Trace

__all__ = [
    "BENCHMARK_ORDER",
    "SUITE",
    "BenchmarkSpec",
    "TRACE_REVISION",
    "cache_trace",
    "generate",
    "generate_all",
]

#: bump when a change to the *kernels* (not the per-benchmark builders,
#: whose bytecode is hashed directly) alters generated traces — it
#: feeds the on-disk trace-cache fingerprint
#: (:func:`repro.workloads.io.spec_fingerprint`), so stale cached
#: traces are invalidated instead of silently reused.
TRACE_REVISION = 1

KB = 1024
MB = 1024 * KB

#: The paper's Figure 1 left-to-right ordering (ascending IPC potential
#: with an ideal L2); every figure in the paper uses this order.
BENCHMARK_ORDER: Tuple[str, ...] = (
    "fma3d", "equake", "eon", "crafty", "gzip", "sixtrack", "vortex",
    "perlbmk", "mesa", "galgel", "apsi", "bzip2", "gap", "wupwise",
    "parser", "facerec", "vpr", "twolf", "lucas", "gcc", "applu", "art",
    "mgrid", "swim", "ammp", "mcf",
)


class _Layout:
    """Bump allocator handing out address regions for one benchmark.

    Guard gaps between regions are deliberately irregular: with evenly
    spaced bases, the tags of interleaved streams would differ by a
    constant, making every cross-stream tag sequence spuriously
    "strided" and corrupting the Figure 15 measurement.  Real heaps are
    not evenly spaced either.
    """

    _GUARDS = (64 * KB, 160 * KB, 96 * KB, 288 * KB, 48 * KB, 224 * KB)

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base
        self._allocations = 0

    def region(self, size: int, align: int = 4 * KB, offset: int = 0) -> int:
        """Allocate ``size`` bytes aligned to ``align`` plus ``offset``."""
        aligned = -(-self._next // align) * align + offset
        guard = self._GUARDS[self._allocations % len(self._GUARDS)]
        self._allocations += 1
        self._next = aligned + size + guard
        return aligned


BuilderFn = Callable[[TraceBuilder, np.random.Generator, int], None]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One synthetic benchmark: generator + metadata."""

    name: str
    build: BuilderFn
    base_ipc: float
    #: one-line behavioural description (shown by the CLI).
    summary: str


def _rounds(n: int, count: int) -> List[int]:
    """Split ``n`` accesses into ``count`` near-equal round sizes."""
    base = n // count
    sizes = [base] * count
    sizes[-1] += n - base * count
    return sizes


def _evolve(rng: np.random.Generator, order: np.ndarray, fraction: float) -> None:
    """Mutate a chase traversal in place by swapping random node pairs.

    Real pointer-structure traversals are not identical between
    iterations: allocations, rebalancing, and data-dependent branches
    reorder part of the walk.  ``fraction`` controls how much of the
    order churns per phase round — the knob that separates mcf-like
    stable networks (small churn, address correlation retains value)
    from gcc-like rapidly changing structures (address correlation
    decays while tag-level structure persists).
    """
    count = int(len(order) * fraction)
    if count <= 0:
        return
    left = rng.integers(0, len(order), count)
    right = rng.integers(0, len(order), count)
    order[left], order[right] = order[right], order[left]


# ----------------------------------------------------------------------
# Low-potential group: L1-resident compute with small miss footprints.
# ----------------------------------------------------------------------


def _fma3d(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(12 * KB)
    arrays = [lay.region(8 * KB, align=32 * KB) for _ in range(3)]
    checkpoint = [lay.region(1536 * KB, offset=4 * KB * j) for j in range(3)]
    off = 0
    off2 = 0
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 12 * KB, int(size * 0.86), 0x400000, gap_range=(6, 12))
        its = max(1, int(size * 0.12) // 3)
        interleaved_sweep(
            b, rng, arrays, [8 * KB] * 3, 16, its, 0x401000,
            gap_range=(6, 12), start_offset=off,
        )
        off += its * 16
        # Slow checkpoint writer: rare but perfectly predictable misses
        # (the paper's Figure 12 shows fma3d with near-ideal coverage).
        its2 = max(1, int(size * 0.02) // 3)
        interleaved_sweep(
            b, rng, checkpoint, [1536 * KB] * 3, 32, its2, 0x402000,
            gap_range=(20, 32), start_offset=off2,
        )
        off2 += its2 * 32


def _equake(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(14 * KB)
    mesh = [lay.region(48 * KB, offset=4 * KB * j) for j in range(2)]
    scratch = lay.region(160 * KB)
    off = 0
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 14 * KB, int(size * 0.75), 0x410000, gap_range=(5, 11))
        its = max(1, int(size * 0.18) // 2)
        interleaved_sweep(
            b, rng, mesh, [48 * KB] * 2, 8, its, 0x411000,
            gap_range=(5, 11), start_offset=off,
        )
        off += its * 8
        random_region(b, rng, scratch, 160 * KB, max(1, int(size * 0.07)), 0x412000)


def _eon(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(12 * KB)
    scene = lay.region(72 * KB)
    frames = [lay.region(1536 * KB, offset=4 * KB * j) for j in range(2)]
    order = rng.permutation(72 * KB // 128)
    visited = 0
    off = 0
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 12 * KB, int(size * 0.8), 0x420000, gap_range=(6, 12))
        steps = max(1, int(size * 0.18) // 2)
        pointer_chase(
            b, rng, scene, len(order), 128, steps, 0x421000,
            gap_range=(5, 10), payload=1, order=order, start=visited,
        )
        visited += steps
        its = max(1, int(size * 0.02) // 2)
        interleaved_sweep(
            b, rng, frames, [1536 * KB] * 2, 32, its, 0x422000,
            gap_range=(20, 32), start_offset=off,
        )
        off += its * 32


def _crafty(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(16 * KB)
    tables = lay.region(3 * MB)
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 16 * KB, int(size * 0.78), 0x430000, gap_range=(5, 10))
        random_region(
            b, rng, tables, 3 * MB, max(1, int(size * 0.22)), 0x431000,
            gap_range=(6, 12), pc_sites=8, window=224 * KB,
        )


def _gzip(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    dictionary = lay.region(24 * KB)
    window = lay.region(1792 * KB)
    for size in _rounds(n, 6):
        hot_loop(b, rng, dictionary, 24 * KB, int(size * 0.62), 0x440000, gap_range=(5, 10))
        sequential_bursts(
            b, rng, window, 1792 * KB, max(1, int(size * 0.38)), 0x441000,
            gap_range=(6, 12), burst_range=(64, 512), stride=8,
        )


def _sixtrack(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(14 * KB)
    lattice = [lay.region(128 * KB, offset=4 * KB * j) for j in range(2)]
    off = 0
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 14 * KB, int(size * 0.6), 0x450000, gap_range=(6, 11))
        its = max(1, int(size * 0.4) // 2)
        interleaved_sweep(
            b, rng, lattice, [128 * KB] * 2, 8, its, 0x451000,
            gap_range=(5, 10), start_offset=off,
        )
        off += its * 8


def _vortex(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(12 * KB)
    objects = lay.region(320 * KB)
    index = lay.region(1536 * KB)
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 12 * KB, int(size * 0.52), 0x460000)
        hash_table_walk(
            b, rng, objects, 320 * KB // 64, max(1, int(size * 0.28)), 0x461000,
            gap_range=(5, 10), chain=1,
        )
        random_region(
            b, rng, index, 1536 * KB, max(1, int(size * 0.2)), 0x462000,
            window=160 * KB,
        )


def _perlbmk(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(16 * KB)
    symbols = lay.region(384 * KB)
    strings = lay.region(192 * KB)
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 16 * KB, int(size * 0.55), 0x470000)
        hash_table_walk(
            b, rng, symbols, 384 * KB // 64, max(1, int(size * 0.3)), 0x471000,
            gap_range=(5, 11), chain=2,
        )
        sequential_bursts(
            b, rng, strings, 192 * KB, max(1, int(size * 0.15)), 0x472000,
            burst_range=(16, 96),
        )


def _mesa(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(12 * KB)
    buffers = [lay.region(320 * KB, offset=4 * KB * j) for j in range(3)]
    off = 0
    for size in _rounds(n, 6):
        hot_loop(b, rng, hot, 12 * KB, int(size * 0.52), 0x480000)
        its = max(1, int(size * 0.48) // 3)
        interleaved_sweep(
            b, rng, buffers, [320 * KB] * 3, 4, its, 0x481000,
            gap_range=(5, 11), store_streams=(2,), start_offset=off,
        )
        off += its * 4


def _galgel(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(14 * KB)
    blocks = [lay.region(288 * KB, offset=4 * KB * j) for j in range(2)]
    off = 0
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 14 * KB, int(size * 0.45), 0x490000)
        its = max(1, int(size * 0.55) // 2)
        interleaved_sweep(
            b, rng, blocks, [288 * KB] * 2, 8, its, 0x491000,
            gap_range=(5, 10), store_streams=(1,), start_offset=off,
        )
        off += its * 8


# ----------------------------------------------------------------------
# Mid group: working sets around the L2 capacity.
# ----------------------------------------------------------------------


def _apsi(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(10 * KB)
    fields = [lay.region(512 * KB, offset=4 * KB * j) for j in range(5)]
    off = 0
    for size in _rounds(n, 4):
        hot_loop(b, rng, hot, 10 * KB, int(size * 0.3), 0x4A0000, gap_range=(6, 12))
        its = max(1, int(size * 0.7) // 5)
        interleaved_sweep(
            b, rng, fields, [512 * KB] * 5, 16, its, 0x4A1000,
            gap_range=(7, 13), store_streams=(4,), start_offset=off,
        )
        off += its * 16


def _bzip2(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(16 * KB)
    block = lay.region(1280 * KB)
    refs = lay.region(2 * MB)
    for size in _rounds(n, 6):
        hot_loop(b, rng, hot, 16 * KB, int(size * 0.42), 0x4B0000)
        sequential_bursts(
            b, rng, block, 1280 * KB, max(1, int(size * 0.38)), 0x4B1000,
            gap_range=(6, 12), burst_range=(48, 384),
        )
        random_region(
            b, rng, refs, 2 * MB, max(1, int(size * 0.2)), 0x4B2000,
            window=192 * KB,
        )


def _gap(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(12 * KB)
    bags = lay.region(640 * KB)
    vectors = [lay.region(512 * KB, offset=4 * KB * j) for j in range(2)]
    off = 0
    for size in _rounds(n, 6):
        hot_loop(b, rng, hot, 12 * KB, int(size * 0.38), 0x4C0000)
        hash_table_walk(
            b, rng, bags, (640 * KB) // 64, max(1, int(size * 0.22)), 0x4C1000,
            gap_range=(6, 12), chain=1,
        )
        its = max(1, int(size * 0.4) // 2)
        interleaved_sweep(
            b, rng, vectors, [512 * KB] * 2, 8, its, 0x4C2000,
            gap_range=(6, 12), start_offset=off,
        )
        off += its * 8


def _wupwise(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(10 * KB)
    lattices = [lay.region(768 * KB, offset=4 * KB * j) for j in range(4)]
    off = 0
    for size in _rounds(n, 4):
        hot_loop(b, rng, hot, 10 * KB, int(size * 0.25), 0x4D0000, gap_range=(6, 12))
        its = max(1, int(size * 0.75) // 4)
        interleaved_sweep(
            b, rng, lattices, [768 * KB] * 4, 16, its, 0x4D1000,
            gap_range=(7, 14), store_streams=(3,), start_offset=off,
        )
        off += its * 16


def _parser(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(14 * KB)
    dictionary = lay.region(768 * KB)
    chart = lay.region(256 * KB)
    order = rng.permutation(768 * KB // 80)
    visited = 0
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 14 * KB, int(size * 0.35), 0x4E0000)
        steps = max(1, int(size * 0.45) // 2)
        pointer_chase(
            b, rng, dictionary, len(order), 80, steps, 0x4E1000,
            gap_range=(4, 9), payload=1, order=order, start=visited,
        )
        visited += steps
        _evolve(rng, order, 0.05)
        hash_table_walk(
            b, rng, chart, (256 * KB) // 64, max(1, int(size * 0.2)), 0x4E2000
        )


def _facerec(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    # Private-history class: the gallery chase gives each cache set its
    # own tag sequence, so TCP-8M's separated history beats the shared
    # 8 KB PHT (the paper lists facerec among those benchmarks).
    lay = _Layout()
    hot = lay.region(10 * KB)
    gallery = lay.region(1536 * KB)
    images = [lay.region(448 * KB, offset=13 * KB * (j + 1)) for j in range(2)]
    order = rng.permutation(1536 * KB // 96)
    visited = 0
    off = 0
    for size in _rounds(n, 4):
        hot_loop(b, rng, hot, 10 * KB, int(size * 0.25), 0x4F0000, gap_range=(6, 12))
        steps = max(1, int(size * 0.3) // 2)
        pointer_chase(
            b, rng, gallery, len(order), 96, steps, 0x4F1000,
            gap_range=(5, 10), payload=1, order=order, start=visited,
        )
        visited += steps
        its = max(1, int(size * 0.45) // 2)
        _evolve(rng, order, 0.15)
        interleaved_sweep(
            b, rng, images, [448 * KB] * 2, 8, its, 0x4F2000,
            gap_range=(6, 12), start_offset=off,
        )
        off += its * 8


def _vpr(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(12 * KB)
    netlist = lay.region(2560 * KB)
    routing = lay.region(384 * KB)
    order = rng.permutation(384 * KB // 64)
    visited = 0
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 12 * KB, int(size * 0.38), 0x500000)
        random_region(
            b, rng, netlist, 2560 * KB, max(1, int(size * 0.34)), 0x501000,
            gap_range=(6, 12), window=256 * KB,
        )
        steps = max(1, int(size * 0.28) // 2)
        pointer_chase(
            b, rng, routing, len(order), 64, steps, 0x502000,
            gap_range=(5, 10), payload=1, order=order, start=visited,
        )
        visited += steps
        _evolve(rng, order, 0.18)


def _twolf(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(14 * KB)
    cells = lay.region(3584 * KB)
    for size in _rounds(n, 8):
        hot_loop(b, rng, hot, 14 * KB, int(size * 0.46), 0x510000)
        random_region(
            b, rng, cells, 3584 * KB, max(1, int(size * 0.54)), 0x511000,
            gap_range=(6, 12), pc_sites=10, window=256 * KB,
        )


def _lucas(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(8 * KB)
    signals = [lay.region(1536 * KB, offset=4 * KB * j) for j in range(2)]
    off = 0
    for size in _rounds(n, 4):
        hot_loop(b, rng, hot, 8 * KB, int(size * 0.25), 0x520000, gap_range=(7, 13))
        its = max(1, int(size * 0.75) // 2)
        interleaved_sweep(
            b, rng, signals, [1536 * KB] * 2, 64, its, 0x521000,
            gap_range=(18, 30), store_streams=(1,), start_offset=off,
        )
        off += its * 64


def _gcc(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    # Private-history class: RTL chasing dominates the miss stream.
    lay = _Layout()
    hot = lay.region(14 * KB)
    rtl = lay.region(1 * MB)
    tables = [lay.region(192 * KB, offset=5 * KB * (j + 1)) for j in range(3)]
    order = rng.permutation(1 * MB // 64)
    visited = 0
    off = 0
    for size in _rounds(n, 6):
        hot_loop(b, rng, hot, 14 * KB, int(size * 0.3), 0x530000)
        steps = max(1, int(size * 0.34) // 2)
        pointer_chase(
            b, rng, rtl, len(order), 64, steps, 0x531000,
            gap_range=(4, 9), payload=1, order=order, start=visited,
        )
        visited += steps
        its = max(1, int(size * 0.36) // 3)
        _evolve(rng, order, 0.2)
        interleaved_sweep(
            b, rng, tables, [192 * KB] * 3, 8, its, 0x532000,
            gap_range=(5, 11), start_offset=off,
        )
        off += its * 8


# ----------------------------------------------------------------------
# High-potential group: footprints beyond L2, miss-dominated.
# ----------------------------------------------------------------------


def _applu(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(8 * KB)
    grids = [lay.region(832 * KB, offset=4 * KB * j) for j in range(3)]
    off = 0
    for size in _rounds(n, 3):
        hot_loop(b, rng, hot, 8 * KB, int(size * 0.15), 0x540000, gap_range=(7, 13))
        its = max(1, int(size * 0.85) // 3)
        interleaved_sweep(
            b, rng, grids, [832 * KB] * 3, 16, its, 0x541000,
            gap_range=(8, 15), store_streams=(2,), start_offset=off,
        )
        off += its * 16


def _art(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    # Small tag working set looped many times, just over L2 capacity.
    # Bases are misaligned so per-set histories differ slightly — the
    # paper reports art among the benchmarks preferring TCP-8M.
    lay = _Layout()
    hot = lay.region(6 * KB)
    weights = [lay.region(384 * KB, offset=9 * KB * (j + 1)) for j in range(3)]
    off = 0
    for size in _rounds(n, 3):
        hot_loop(b, rng, hot, 6 * KB, int(size * 0.1), 0x550000, gap_range=(7, 13))
        its = max(1, int(size * 0.9) // 3)
        interleaved_sweep(
            b, rng, weights, [384 * KB] * 3, 16, its, 0x551000,
            gap_range=(8, 15), start_offset=off,
        )
        off += its * 16


def _mgrid(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(8 * KB)
    # Multigrid hierarchy: three grid levels of decreasing size swept
    # together (fine-level residual, coarse-level correction).
    levels = [lay.region(sz, offset=4 * KB * j) for j, sz in
              enumerate((2 * MB, 512 * KB, 128 * KB))]
    grid = levels[0]
    off = 0
    off2 = 0
    for size in _rounds(n, 3):
        hot_loop(b, rng, hot, 8 * KB, int(size * 0.12), 0x560000, gap_range=(7, 13))
        its = max(1, int(size * 0.6) // 3)
        interleaved_sweep(
            b, rng, levels, [2 * MB, 512 * KB, 128 * KB], 16,
            its, 0x561000, gap_range=(8, 15), start_offset=off,
        )
        off += its * 16
        # Restriction pass: single strided sweep (strided tag sequences).
        its2 = max(1, int(size * 0.28))
        interleaved_sweep(
            b, rng, [grid], [2 * MB], 128, its2, 0x562000,
            gap_range=(18, 30), start_offset=off2,
        )
        off2 += its2 * 128


def _swim(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(8 * KB)
    fields = [lay.region(1 * MB, offset=4 * KB * j) for j in range(4)]
    off = 0
    off2 = 0
    for size in _rounds(n, 3):
        hot_loop(b, rng, hot, 8 * KB, int(size * 0.1), 0x570000, gap_range=(7, 13))
        its = max(1, int(size * 0.65) // 4)
        interleaved_sweep(
            b, rng, fields, [1 * MB] * 4, 16, its, 0x571000,
            gap_range=(8, 15), store_streams=(3,), start_offset=off,
        )
        off += its * 16
        # Single-array update pass: per-set tags advance by a constant
        # stride — the Figure 15 strided-sequence signature.
        its2 = max(1, int(size * 0.25))
        interleaved_sweep(
            b, rng, [fields[0]], [1 * MB], 64, its2, 0x572000,
            gap_range=(18, 30), start_offset=off2,
        )
        off2 += its2 * 64


def _ammp(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(8 * KB)
    atoms = lay.region(1280 * KB)
    neighbours = [lay.region(448 * KB, offset=11 * KB * (j + 1)) for j in range(2)]
    order = rng.permutation(1280 * KB // 56)
    visited = 0
    off = 0
    for size in _rounds(n, 3):
        hot_loop(b, rng, hot, 8 * KB, int(size * 0.12), 0x580000, gap_range=(6, 12))
        steps = max(1, int(size * 0.58) // 3)
        pointer_chase(
            b, rng, atoms, len(order), 56, steps, 0x581000,
            gap_range=(5, 10), payload=2, payload_store=True,
            order=order, start=visited,
        )
        visited += steps
        _evolve(rng, order, 0.18)
        its = max(1, int(size * 0.3) // 2)
        interleaved_sweep(
            b, rng, neighbours, [448 * KB] * 2, 8, its, 0x582000,
            gap_range=(6, 12), start_offset=off,
        )
        off += its * 8


def _mcf(b: TraceBuilder, rng: np.random.Generator, n: int) -> None:
    lay = _Layout()
    hot = lay.region(6 * KB)
    network = lay.region(3 * MB)
    buckets = lay.region(2 * MB)
    order = rng.permutation(3 * MB // 128)
    visited = 0
    for size in _rounds(n, 3):
        hot_loop(b, rng, hot, 6 * KB, int(size * 0.08), 0x590000, gap_range=(5, 10))
        steps = max(1, int(size * 0.8) // 2)
        pointer_chase(
            b, rng, network, len(order), 128, steps, 0x591000,
            gap_range=(3, 8), payload=1, order=order, start=visited,
        )
        visited += steps
        _evolve(rng, order, 0.12)
        random_region(
            b, rng, buckets, 2 * MB, max(1, int(size * 0.12)), 0x592000,
            window=192 * KB,
        )


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------

SUITE: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        BenchmarkSpec("fma3d", _fma3d, 5.5, "L1-resident compute, tiny conflict loop"),
        BenchmarkSpec("equake", _equake, 5.0, "compute + small mesh sweeps"),
        BenchmarkSpec("eon", _eon, 5.5, "compute + tiny scene-graph chase"),
        BenchmarkSpec("crafty", _crafty, 5.0, "compute + random table probes"),
        BenchmarkSpec("gzip", _gzip, 4.5, "dictionary loop + sliding-window streams"),
        BenchmarkSpec("sixtrack", _sixtrack, 5.0, "compute + repetitive lattice loops"),
        BenchmarkSpec("vortex", _vortex, 4.5, "object DB: hash walks + index scans"),
        BenchmarkSpec("perlbmk", _perlbmk, 4.5, "symbol-table hashing + string bursts"),
        BenchmarkSpec("mesa", _mesa, 4.5, "frame/depth/texture buffer streaming"),
        BenchmarkSpec("galgel", _galgel, 4.5, "blocked matrix loops"),
        BenchmarkSpec("apsi", _apsi, 4.0, "five-field atmospheric sweeps (2.5MB)"),
        BenchmarkSpec("bzip2", _bzip2, 4.0, "block sort streams + back-references"),
        BenchmarkSpec("gap", _gap, 4.0, "bag hashing + vector sweeps"),
        BenchmarkSpec("wupwise", _wupwise, 4.0, "four-lattice sweeps (3MB)"),
        BenchmarkSpec("parser", _parser, 3.5, "dictionary chasing + chart hashing"),
        BenchmarkSpec("facerec", _facerec, 4.0, "gallery chase + image sweeps"),
        BenchmarkSpec("vpr", _vpr, 3.5, "random netlist probes + routing chase"),
        BenchmarkSpec("twolf", _twolf, 3.5, "random cell probes (unlearnable)"),
        BenchmarkSpec("lucas", _lucas, 4.0, "large-stride FFT sweeps (3MB)"),
        BenchmarkSpec("gcc", _gcc, 3.5, "RTL chasing + small table sweeps"),
        BenchmarkSpec("applu", _applu, 3.5, "three-grid SSOR sweeps (2.4MB)"),
        BenchmarkSpec("art", _art, 3.5, "small tag set looped many times (1.1MB)"),
        BenchmarkSpec("mgrid", _mgrid, 3.5, "stencil + strided restriction (2MB)"),
        BenchmarkSpec("swim", _swim, 3.5, "four-field sweeps + strided update (4MB)"),
        BenchmarkSpec("ammp", _ammp, 3.0, "atom-list chase + neighbour sweeps"),
        BenchmarkSpec("mcf", _mcf, 2.5, "network simplex chase (3MB, serialized)"),
    )
}

assert set(SUITE) == set(BENCHMARK_ORDER), "suite and ordering disagree"

#: process-level trace cache: experiments reuse the same workloads.
_CACHE: Dict[Tuple[str, int], Trace] = {}


def generate(name: str, scale: Union[Scale, int] = Scale.STANDARD) -> Trace:
    """Generate (or fetch from cache) the named benchmark's trace.

    ``scale`` is a :class:`Scale` preset or a raw positive access
    count.  Lookup order: the in-process cache, then — when a
    trace-cache directory is active (``REPRO_TRACE_CACHE`` or a
    campaign's :func:`repro.workloads.io.trace_cache_scope`) — the
    on-disk cache via a read-only mmap, and finally deterministic
    regeneration, which writes back through to the disk cache.
    """
    if name not in SUITE:
        raise KeyError(f"unknown benchmark {name!r}; choose from {sorted(SUITE)}")
    accesses = scale.accesses if isinstance(scale, Scale) else int(scale)
    if accesses <= 0:
        raise ValueError(f"accesses must be positive, got {accesses}")
    key = (name, accesses)
    registry = obs_metrics.active_registry()
    cached = _CACHE.get(key)
    if cached is not None:
        if registry is not None:
            registry.counter("trace_cache.memory_hits").inc()
        return cached
    trace = trace_io.load_cached_trace(name, accesses)
    if trace is None:
        # Single-flight: when N workers miss on the same trace at once,
        # one generates under the lock while the rest wait, re-check,
        # and hit.  A yielded False (no cache dir, lock timeout) means
        # generating here is correct, just possibly duplicated.
        with trace_io.generation_lock(name, accesses) as held:
            if held:
                trace = trace_io.load_cached_trace(name, accesses)
            if trace is None:
                if registry is not None:
                    registry.counter("trace_cache.misses").inc()
                spec = SUITE[name]
                builder = TraceBuilder(name, base_ipc=spec.base_ipc)
                spec.build(builder, make_rng(name), accesses)
                trace = builder.build()
                trace_io.store_cached_trace(trace, name, accesses)
            elif registry is not None:
                registry.counter("trace_cache.singleflight_hits").inc()
    elif registry is not None:
        registry.counter("trace_cache.disk_hits").inc()
    _CACHE[key] = trace
    return trace


def cache_trace(name: str, scale: Union[Scale, int] = Scale.STANDARD) -> Optional[Path]:
    """Ensure the named trace exists in the on-disk cache (best-effort).

    Campaigns call this in the parent before spawning workers so each
    trace is generated and written exactly once; returns the entry's
    path, or ``None`` when no cache directory is active or the write
    failed.
    """
    accesses = scale.accesses if isinstance(scale, Scale) else int(scale)
    trace = generate(name, accesses)
    root = trace_io.trace_cache_dir()
    if root is None:
        return None
    path = trace_io.cached_trace_path(name, accesses, root)
    if path.exists():
        return path
    return trace_io.store_cached_trace(trace, name, accesses, root)


def generate_all(scale: Union[Scale, int] = Scale.STANDARD) -> Dict[str, Trace]:
    """Generate every benchmark, in the paper's Figure 1 order."""
    return {name: generate(name, scale) for name in BENCHMARK_ORDER}
