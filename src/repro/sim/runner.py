"""The simulate() entry point.

One call = one cold machine + one workload + one prefetcher, run to
completion.  A process-level result cache keyed by (workload, scale,
configuration) lets experiments share runs — Figure 11, Figure 12 and
the headline numbers all reuse the same TCP-8K runs, exactly as one
simulation campaign would.

Below the in-process cache sits the optional persistent tier
(:mod:`repro.sim.store`): when a store is active, ``simulate()`` reads
through it (validated hits are installed into the process cache) and
writes every fresh result through to disk, so a killed campaign
resumes from its checkpoints instead of starting over.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from contextlib import ExitStack
from typing import Dict, Optional, Set, Tuple, Union

from repro.backend import resolve_backend
from repro.engine.probes import MetricsProbe, ProgressProbe, SanitizerProbe
from repro.memory import MemoryHierarchy
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.sim import resilience, sanitizer as sanitizer_mod
from repro.sim.config import SimulationConfig
from repro.sim.results import SimResult, SuiteResult
from repro.workloads import BENCHMARK_ORDER, Scale, Trace, generate

__all__ = ["clear_cache", "simulate", "simulate_suite"]

_RESULT_CACHE: Dict[Tuple[str, int, SimulationConfig], SimResult] = {}


def clear_cache() -> None:
    """Drop all memoised simulation results (tests use this).

    Only the in-process tier is cleared; an active on-disk store keeps
    its checkpoints (use :meth:`repro.sim.store.ResultStore.clear` for
    those).
    """
    _RESULT_CACHE.clear()


#: fraction of each trace used to warm caches/predictors before
#: measurement starts (the analogue of the paper's 1B skipped
#: instructions before its 2B measured ones).
WARMUP_FRACTION = 0.25

#: store roots already reported as degraded (warn once, not per put).
_DEGRADED_WARNED: Set[str] = set()


def _warn_store_degraded(store) -> None:
    root = str(store.root)
    if root in _DEGRADED_WARNED:
        return
    _DEGRADED_WARNED.add(root)
    warnings.warn(
        f"result store at {root} degraded to in-memory-only "
        f"({store.degraded_reason}); results from this point on are not "
        f"persisted and a resumed campaign will re-run them",
        RuntimeWarning,
        stacklevel=3,
    )


def _execute(
    trace: Trace, config: SimulationConfig, warmup_fraction: float
) -> SimResult:
    """Run one cold machine over one trace (the uncached core of
    :func:`simulate`; tests monkeypatch this to count real runs)."""
    hierarchy = MemoryHierarchy(config.hierarchy)
    prefetcher = config.build_prefetcher()
    hierarchy.attach_prefetcher(prefetcher)
    # Backend selection: config field -> REPRO_BACKEND -> "python".
    # All backends are bit-identical by contract, so the choice never
    # appears in result fingerprints (see SimulationConfig.backend).
    backend = resolve_backend(config.backend)
    warmup = int(len(trace) * warmup_fraction)

    # Observation attaches as engine probes: the heartbeat/fault hook
    # first (so a scheduled corruption lands before checks at the same
    # mark), the sanitizer last.
    probes = []
    sanitizer = sanitizer_mod.build_sanitizer(config.sanitize)
    corruption = sanitizer_mod.consume_scheduled_corruption()
    if (
        resilience.heartbeat_active()
        or corruption is not None
        or resilience.shutdown_watch_active()
    ):
        pending = [corruption]

        def progress(done: int, total: int, sim_time: float) -> None:
            if pending[0] is not None and done > warmup:
                # Apply the injected corruption only after the warmup
                # snapshot: a stats drift applied earlier would be
                # cancelled by the snapshot subtraction and become
                # undetectable in the measured result.
                kind, pending[0] = pending[0], None
                sanitizer_mod.corrupt_state(hierarchy, prefetcher, kind)
            if resilience.shutdown_requested():
                # Only the campaign parent runs with a shutdown watch
                # installed (workers are reaped by their supervisor):
                # abandon the in-flight simulation at the next progress
                # mark so a SIGTERM'd in-process campaign stops promptly.
                raise resilience.CampaignInterrupted(
                    "graceful shutdown requested mid-simulation"
                )
            resilience.emit_heartbeat(done, total, sim_time)

        probes.append(ProgressProbe(progress))
    registry = obs_metrics.active_registry()
    if registry is not None:
        # Strictly read-only observation (see MetricsProbe): attaching
        # it changes mark cadence at most, never simulated state — the
        # enabled-vs-disabled differential test enforces bit-identical
        # results.
        probes.append(MetricsProbe(registry))
    if sanitizer is not None:
        probes.append(SanitizerProbe(sanitizer))

    core_result = backend.run(
        trace, hierarchy, config.core, warmup=warmup, probes=probes
    )
    hierarchy.finalize()
    for probe in probes:
        probe.on_finalize(hierarchy)

    result = SimResult(
        workload=trace.name,
        config_label=config.resolved_label(),
        core=core_result,
        memory=hierarchy.measured_stats(),
        prefetcher_name=prefetcher.name,
        prefetcher_storage_bytes=prefetcher.storage_bytes(),
        prefetcher_predictions=prefetcher.stats.predictions,
    )
    engine_stats = getattr(backend, "last_engine_stats", None) or {}
    result.backend_fallback = engine_stats.get("fallback")
    return result


def _obs_scope(stack: ExitStack):
    """Install per-run observability per ``REPRO_OBS`` (on ``stack``).

    Returns ``(registry, owns_registry, collector)``:

    * ``registry`` — the metrics registry hooks record into for this
      run: an already-active one (a campaign parent's), or a fresh one
      installed for the run when ``REPRO_OBS`` enables metrics, else
      ``None``.
    * ``owns_registry`` — whether this run created the registry (and
      should surface its snapshot itself).
    * ``collector`` — a :class:`~repro.obs.spans.TraceCollector`
      installed as the span sink when tracing is enabled and no sink is
      already active (campaign workers already have the pipe-forwarding
      sink; standalone runs get a per-run trace file).
    """
    mode = obs_metrics.resolve_obs()
    registry = obs_metrics.active_registry()
    owns_registry = False
    if mode.metrics and registry is None:
        registry = obs_metrics.MetricsRegistry()
        stack.enter_context(obs_metrics.use_registry(registry))
        owns_registry = True
    collector = None
    if mode.trace and obs_spans.span_sink() is None:
        collector = obs_spans.TraceCollector()
        stack.enter_context(obs_spans.use_span_sink(collector.sink))
    return registry, owns_registry, collector


def _flush_obs(name, label, owned_registry, collector) -> None:
    """Write per-run observability artifacts for a standalone run.

    No-op in campaign workers: their events already rode the pipe sink
    to the parent (``collector`` is None there and the metrics snapshot
    was emitted into the span stream).
    """
    from repro.sim import store as store_mod

    stamp = f"{os.getpid()}-{time.time_ns()}"
    if collector is not None and collector.events:
        collector.write(
            store_mod.default_obs_dir() / f"trace-{name}-{label}-{stamp}.jsonl"
        )
    if (
        owned_registry is not None
        and collector is None
        and obs_spans.span_sink() is None
    ):
        path = store_mod.default_obs_dir() / f"metrics-{name}-{label}-{stamp}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(owned_registry.to_dict(), handle, indent=2)
            handle.write("\n")


def simulate(
    workload: Union[str, Trace],
    config: Optional[SimulationConfig] = None,
    scale: Union[Scale, int] = Scale.STANDARD,
    use_cache: bool = True,
    warmup_fraction: float = WARMUP_FRACTION,
) -> SimResult:
    """Run one workload under one configuration; return its result.

    ``workload`` may be a suite benchmark name (generated at ``scale``)
    or a prebuilt :class:`Trace`.  ``scale`` is a :class:`Scale` preset
    or a raw positive access count; it only applies to *named*
    workloads — a prebuilt :class:`Trace` fixes its own length, so
    combining one with a non-default ``scale`` raises ``ValueError``
    (slice the trace instead of passing a scale).  Results for named
    workloads are memoised per process — and, when a persistent store
    is active (:func:`repro.sim.store.active_store`), checkpointed to
    disk and resumed from it — unless ``use_cache=False``.  The first
    ``warmup_fraction`` of the trace trains state without being counted.
    """
    from repro.sim import store as store_mod

    config = config or SimulationConfig.baseline()
    if not 0 <= warmup_fraction < 1:
        raise ValueError(f"warmup fraction must be in [0, 1), got {warmup_fraction}")

    if config.mix is not None:
        # A mix cell is keyed by its canonical name ("a+b+c") so two
        # spellings of the same combination share checkpoints; the
        # workload argument must agree with the config's mix.
        canonical = "+".join(config.mix)
        if not isinstance(workload, str):
            raise ValueError(
                "a mix configuration takes the canonical mix name "
                f"({canonical!r}), not a prebuilt Trace"
            )
        if workload != canonical:
            raise ValueError(
                f"workload {workload!r} does not match the configuration's "
                f"mix cell {canonical!r}"
            )

    store = None
    accesses = None
    if isinstance(workload, str):
        accesses = scale.accesses if isinstance(scale, Scale) else int(scale)
        if accesses <= 0:
            raise ValueError(f"scale must be positive, got {accesses}")
        key = (workload, accesses, config)
        if use_cache:
            if key in _RESULT_CACHE:
                return _RESULT_CACHE[key]
            store = store_mod.active_store()
            if store is not None:
                stored = store.get(workload, accesses, config)
                if stored is not None:
                    _RESULT_CACHE[key] = stored
                    return stored
    else:
        if scale is not Scale.STANDARD:
            raise ValueError(
                "scale does not apply to a prebuilt Trace (its length is "
                "fixed at construction); slice the trace to the length "
                "you want instead of passing a scale"
            )
        key = None

    name = workload if isinstance(workload, str) else workload.name
    label = config.resolved_label()
    with ExitStack() as stack:
        registry, owns_registry, collector = _obs_scope(stack)
        if config.mix is not None:
            # Multicore front end: per-core traces are generated inside
            # execute_mix (one per mix member, relocated per core).
            from repro.multicore.runner import execute_mix

            with obs_spans.span("simulate", workload=name, config=label):
                result = execute_mix(config, accesses, warmup_fraction)
        else:
            if isinstance(workload, str):
                with obs_spans.span("generate", workload=name, accesses=accesses):
                    trace = generate(workload, accesses)
            else:
                trace = workload
            with obs_spans.span("simulate", workload=name, config=label):
                result = _execute(trace, config, warmup_fraction)
        if key is not None and use_cache:
            # Validate BEFORE caching or checkpointing: a silently-wrong
            # result must never poison the cache or the on-disk store.
            try:
                result.validate()
            except ValueError as exc:
                raise resilience.CorruptResult(f"{key[0]}: {exc}") from exc
            _RESULT_CACHE[key] = result
            if store is not None:
                with obs_spans.span("store", workload=name, config=label):
                    store.put(key[0], key[1], config, result)
                if store.degraded:
                    _warn_store_degraded(store)
        if registry is not None and owns_registry:
            # Only a run that built its own registry ships the snapshot
            # into the span stream; a campaign-owned registry is shared
            # across runs, and re-emitting its cumulative totals per run
            # would double-count when the campaign folds events back in.
            obs_spans.emit_metrics(f"run:{name}/{label}", registry.to_dict())
    _flush_obs(name, label, registry if owns_registry else None, collector)
    return result


def simulate_suite(
    config: Optional[SimulationConfig] = None,
    scale: Union[Scale, int] = Scale.STANDARD,
    benchmarks: Optional[Tuple[str, ...]] = None,
) -> SuiteResult:
    """Run one configuration over the whole suite (Figure 1 order)."""
    config = config or SimulationConfig.baseline()
    names = benchmarks if benchmarks is not None else BENCHMARK_ORDER
    runs = {name: simulate(name, config, scale) for name in names}
    return SuiteResult(config.resolved_label(), runs)
