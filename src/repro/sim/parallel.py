"""Parallel, fault-tolerant pre-warming of the simulation result cache.

A full-scale regeneration of the paper's evaluation is ~150 independent
(workload, configuration) simulations; they share nothing at runtime
except the result cache, so they parallelise embarrassingly.

``prewarm`` runs a batch of simulations under the
:mod:`repro.sim.resilience` supervisor — per-job timeouts, bounded
retries with backoff, crash isolation (one dead worker loses one
attempt, not the pool) — and installs the results into this process's
cache (:mod:`repro.sim.runner`) and, when one is active, the on-disk
store (:mod:`repro.sim.store`); afterwards the experiments replay from
cache at zero cost.  The CLI exposes it as ``repro-tcp run ... --jobs
N --retries R --timeout S``.

Workers re-derive everything from the (workload name, config, scale)
key — traces come from the on-disk trace cache (mmap-shared between
fork children) or are regenerated deterministically per worker — so
nothing large crosses process boundaries except the finished
:class:`~repro.sim.results.SimResult` objects.  Jobs already present
in the cache or the store are skipped, which is what makes a
killed-then-restarted campaign resume instead of starting over.

By default campaigns run in the warm-pool worker mode with
workload-affinity scheduling: pending jobs are grouped by benchmark,
groups are ordered longest-expected-first, and a pool worker runs all
configs of one benchmark against a single trace before moving on.
``worker_mode="attempt"`` (or ``REPRO_WORKER_MODE=attempt``) restores
the one-process-per-attempt behavior.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import ExitStack
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import spans as obs_spans
from repro.sim import store as store_mod
from repro.sim.config import SimulationConfig
from repro.sim.resilience import (
    CampaignReport,
    RetryPolicy,
    graceful_shutdown,
    resolve_worker_mode,
    run_supervised,
    shutdown_requested,
)
from repro.sim.results import SimResult, validate_result
from repro.sim.runner import _RESULT_CACHE, simulate
from repro.workloads import BENCHMARK_ORDER, SUITE, Scale, cache_trace
from repro.workloads import io as trace_io

__all__ = ["experiment_configs", "prewarm"]

Job = Tuple[str, SimulationConfig, int]

#: buckets for per-job wall-clock histograms: 1 ms .. ~2.3 h.
_WALL_BUCKETS = tuple(0.001 * 2**i for i in range(24))


def _job_key(job: Job) -> str:
    workload, config, accesses = job
    return f"{workload}/{config.resolved_label()}@{accesses}"


def _run_job(job: Job) -> SimResult:
    """Worker entry point: run one simulation, return its result.

    Runs uncached (``use_cache=False``): the parent — not the worker —
    is responsible for installing the result into the cache and the
    store.  The raw access count is passed straight through, so
    campaigns at custom scales (any positive count, not just the three
    ``Scale`` presets) work.
    """
    workload, config, accesses = job
    return simulate(workload, config, accesses, use_cache=False)


def _expected_cost(name: str, njobs: int) -> float:
    """Relative expected wall-clock for one benchmark's job group.

    Memory-bound benchmarks (low ``base_ipc``) drive far more hierarchy
    activity per access and therefore simulate slower, so expected cost
    scales with the group size over the benchmark's base IPC.  A mix
    cell (``"a+b+c"``) simulates every member stream, so its cost is
    the sum over its parts.
    """
    cost = 0.0
    for part in name.split("+"):
        spec = SUITE.get(part)
        ipc = spec.base_ipc if spec is not None else 4.0
        cost += 1.0 / ipc
    return njobs * cost


def _affinity_order(pending: Sequence[Job]) -> List[Job]:
    """Group jobs by workload, longest-expected group first.

    Contiguous groups give pool workers trace affinity (one generated
    trace serves every config of the benchmark); scheduling the most
    expensive groups first keeps a straggler group from serialising the
    campaign tail.
    """
    groups: Dict[str, List[Job]] = {}
    for job in pending:
        groups.setdefault(job[0], []).append(job)
    ordered = sorted(groups, key=lambda name: -_expected_cost(name, len(groups[name])))
    return [job for name in ordered for job in groups[name]]


def _silence_worker_store() -> None:
    """Child setup: workers must not write the store; the parent does."""
    store_mod.set_active_store(None)


def experiment_configs() -> List[SimulationConfig]:
    """The configurations the main experiments (fig 1/11/12/14) need.

    Figure 13's sweep points are registered dynamically and excluded
    here; prewarming the seven standing configurations already covers
    the bulk of a full regeneration.
    """
    return [
        SimulationConfig.baseline(),
        SimulationConfig.ideal_l2(),
        SimulationConfig.for_prefetcher("tcp-8k"),
        SimulationConfig.for_prefetcher("tcp-8m"),
        SimulationConfig.for_prefetcher("dbcp-2m"),
        SimulationConfig.for_prefetcher("hybrid-8k"),
    ]


def prewarm(
    configs: Optional[Iterable[SimulationConfig]] = None,
    scale: Union[Scale, int] = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
    jobs: int = 0,
    retries: int = 2,
    timeout: Optional[float] = None,
    stall_timeout: Optional[float] = None,
    progress: Optional[Callable[[int, int, str, str], None]] = None,
    worker_mode: Optional[str] = None,
    trace_cache: Union[None, bool, str] = None,
    hosts: Union[None, str, Sequence] = None,
    max_failures: Optional[int] = None,
) -> CampaignReport:
    """Fill the result cache for ``configs`` x ``benchmarks`` in parallel.

    ``scale`` is a :class:`~repro.workloads.Scale` preset or a raw
    positive access count.  ``jobs``: worker processes (0 = cpu count;
    1 = in-process, which keeps the function usable where
    multiprocessing is unavailable).  Each job gets up to ``retries``
    extra attempts and, with ``timeout``, a per-attempt wall-clock
    budget in seconds.  ``stall_timeout`` arms the heartbeat watchdog
    instead: an attempt is killed only when it emits no progress
    heartbeat for that many seconds, so a slow-but-progressing job is
    never lost to a wall-clock guess.

    ``worker_mode`` selects ``"pool"`` (the default: warm long-lived
    workers with workload-affinity scheduling) or ``"attempt"`` (one
    process per attempt); ``REPRO_WORKER_MODE`` overrides the default
    when the argument is omitted.  ``trace_cache`` controls the on-disk
    trace cache: ``None`` honours ``REPRO_TRACE_CACHE`` and defaults to
    a directory next to the result store, ``False`` disables it, a path
    uses that directory.  When enabled, the parent writes each pending
    benchmark's trace once before workers start, so fork-mode children
    share the generated pages and spawn-mode children mmap the same
    archive instead of regenerating.

    Returns a :class:`~repro.sim.resilience.CampaignReport`:
    ``report.executed`` counts *successful* simulations, failed jobs
    are listed in ``report.failures`` (they are never silently counted
    as executed), and entries satisfied from the cache or the
    persistent store are in ``report.skipped``.

    When a store is active, worker heartbeats additionally leave coarse
    mid-run checkpoint markers (``progress.jsonl``) so a preempted long
    job reports how far it got; a job's marker is dropped once its
    result is checkpointed for real.

    ``hosts`` shards the campaign across a fleet instead of local
    workers: a :func:`repro.sim.fabric.parse_hosts` spec string (e.g.
    ``"local:2"`` or ``"ssh:node-a:4,node-b"``) or a prepared
    ``HostSpec`` sequence.  Each host runs an agent process, writes its
    finished results to its own store shard, and the fabric coordinator
    reassigns a lost host's work to the survivors; when every host is
    unreachable, the leftover jobs fall back to the local supervisor
    and the report carries ``fleet_degraded``.  Shards (including those
    of a previous crashed coordinator) are merged into the main log
    before the pending scan, so ``--resume`` is fleet-wide.

    ``max_failures`` aborts the campaign (``report.aborted``) once that
    many jobs have permanently failed, instead of draining the sweep.
    SIGTERM/SIGINT similarly stop the campaign at the next job boundary
    with ``report.interrupted`` set, after checkpointing what finished.
    """
    config_list = list(configs) if configs is not None else experiment_configs()
    names = tuple(benchmarks) if benchmarks is not None else BENCHMARK_ORDER
    accesses = scale.accesses if isinstance(scale, Scale) else int(scale)
    if accesses <= 0:
        raise ValueError(f"scale must be positive, got {accesses}")
    store = store_mod.active_store()
    if store is not None:
        # Fold in any host shards left by an earlier fleet run whose
        # coordinator died before merging: fleet-wide resume means the
        # pending scan below must see every result any host finished.
        store_mod.merge_shards(store)

    host_specs = None
    if hosts is not None:
        from repro.sim import fabric as fabric_mod

        host_specs = fabric_mod.parse_hosts(hosts) if isinstance(hosts, str) else list(hosts)

    report = CampaignReport()
    pending: List[Job] = []
    for config in config_list:
        if config.mix is not None:
            # A mix configuration is a single campaign cell keyed by its
            # canonical name ("a+b+c"), never crossed with the benchmark
            # list (its member streams are fixed by the config itself).
            cell_names = ["+".join(config.mix)]
        else:
            cell_names = names
        for name in cell_names:
            key = (name, accesses, config)
            if key in _RESULT_CACHE:
                report.skipped += 1
                continue
            if store is not None:
                stored = store.get(name, accesses, config)
                if stored is not None:
                    _RESULT_CACHE[key] = stored
                    report.skipped += 1
                    continue
            pending.append((name, config, accesses))
    if not pending:
        if store is not None:
            report.store_health = store.health()
        return report
    pending = _affinity_order(pending)

    by_key = {_job_key(job): job for job in pending}
    heartbeat = None
    if store is not None:
        # Fold worker heartbeats into coarse checkpoint markers: write
        # only when a job advances >= 10% since its last marker, so a
        # chatty worker cannot turn progress.jsonl into a firehose.
        marked: dict = {}

        def heartbeat(job_key: str, done: int, total: int, sim_time: float) -> None:
            if total <= 0 or job_key not in by_key:
                return
            last = marked.get(job_key, 0)
            # A shutdown is in flight: every beat is the potential last
            # word on this job, so bypass the 10% write damping.
            if done - last < total // 10 + 1 and not shutdown_requested():
                return
            marked[job_key] = done
            workload, config, accesses = by_key[job_key]
            store.put_progress(workload, accesses, config, done, total, sim_time)

    policy = RetryPolicy(
        retries=retries,
        timeout=timeout,
        stall_timeout=stall_timeout,
        max_failures=max_failures,
    )
    mode = resolve_worker_mode(worker_mode, default="pool")
    cache_root = trace_io.resolve_trace_cache(trace_cache)

    # Campaign observability (REPRO_OBS): one registry aggregates the
    # parent's counters and every worker's forwarded snapshot; one
    # collector merges all workers' span streams into a single trace.
    obs = obs_metrics.resolve_obs()
    registry = obs_metrics.active_registry() if obs.metrics else None
    owns_registry = False
    if obs.metrics and registry is None:
        registry = obs_metrics.MetricsRegistry()
        owns_registry = True
    outer_sink = obs_spans.span_sink()
    collector = obs_spans.TraceCollector() if obs.trace and outer_sink is None else None
    campaign_root: List[Optional[str]] = [None]

    span_cb: Optional[Callable[[Dict[str, object]], None]] = None
    if collector is not None or outer_sink is not None or registry is not None:

        def span_cb(event: Dict[str, object]) -> None:
            # Worker span streams restart their parent chains at None
            # (each worker's stack is its own); re-root them under the
            # campaign span so the merged trace is one tree and the
            # per-stage breakdown never counts the root as a leaf.
            if (
                campaign_root[0] is not None
                and event.get("ev") == "begin"
                and event.get("parent") is None
            ):
                event = dict(event, parent=campaign_root[0])
            if collector is not None:
                collector.add(event)
            elif outer_sink is not None:
                outer_sink(event)
            if registry is None:
                return
            kind = event.get("ev")
            if kind == "metrics":
                # A worker run's end-of-job snapshot: fold it in.
                registry.merge(event.get("metrics", {}))
            elif kind == "end" and event.get("name") == "attempt":
                registry.histogram(
                    "campaign.job_wall_s", buckets=_WALL_BUCKETS
                ).observe(float(event.get("dur", 0.0)))

    if registry is not None:
        caller_progress = progress

        def progress(done: int, total: int, job_key: str, status: str) -> None:
            registry.gauge("campaign.queue_depth").set(total - done)
            if caller_progress is not None:
                caller_progress(done, total, job_key, status)

    with ExitStack() as stack:
        if obs_profile.profile_mode() is not None and not os.environ.get(
            obs_profile.PROFILE_DIR_ENV
        ):
            # Pin the parent's store-relative profile directory for the
            # workers, whose own store view is silenced (see
            # obs_profile.profile_dir); fork and spawn children both
            # inherit the environment.
            stack.callback(os.environ.pop, obs_profile.PROFILE_DIR_ENV, None)
            os.environ[obs_profile.PROFILE_DIR_ENV] = str(obs_profile.profile_dir())
        if registry is not None:
            stack.enter_context(obs_metrics.use_registry(registry))
        if collector is not None:
            # The parent's own spans route through span_cb too, so the
            # in-process fallback records the same per-job histograms
            # the multiprocessing path gets from forwarded events.
            stack.enter_context(obs_spans.use_span_sink(span_cb))
            root = stack.enter_context(
                obs_spans.span(
                    "campaign", jobs=len(pending), scale=accesses, mode=mode
                )
            )
            campaign_root[0] = root.span_id
        stack.enter_context(trace_io.trace_cache_scope(cache_root))
        if cache_root is not None:
            # Write each distinct trace once in the parent: fork-mode
            # children inherit the generated pages, spawn-mode children
            # mmap the archive instead of regenerating it per attempt.
            with obs_spans.span("trace-precache", scale=accesses):
                parts = (
                    part for job in pending for part in job[0].split("+")
                )
                for name in dict.fromkeys(parts):
                    cache_trace(name, accesses)
        # One signal interrupts cleanly (checkpoint, reap workers, exit
        # 130 upstream); a second of the same kind is immediately fatal.
        stack.enter_context(graceful_shutdown())

        def _local_run(
            batch: List[Job], settled: int = 0
        ) -> CampaignReport:
            local_progress = progress
            if settled and progress is not None:

                def local_progress(done: int, _total: int, k: str, s: str) -> None:
                    progress(settled + done, len(pending), k, s)

            return run_supervised(
                batch,
                _run_job,
                workers=jobs,
                policy=policy,
                key=_job_key,
                validate=validate_result,
                progress=local_progress,
                heartbeat=heartbeat,
                child_setup=_silence_worker_store,
                in_process=True if jobs == 1 or len(batch) == 1 else None,
                mode=mode,
                group=lambda job: job[0],
                span=span_cb,
            )

        if host_specs:
            from repro.sim import fabric as fabric_mod

            report.merge(
                fabric_mod.run_fleet(
                    pending,
                    hosts=host_specs,
                    key=_job_key,
                    store_root=store.root if store is not None else None,
                    policy=policy,
                    group=lambda job: job[0],
                    progress=progress,
                    heartbeat=heartbeat,
                    span=span_cb,
                    fallback=_local_run,
                )
            )
        else:
            report.merge(_local_run(pending))

        # Install successes into the in-process cache and checkpoint
        # them (inside the campaign span: persisting is campaign work).
        with obs_spans.span("install", results=report.executed):
            for job_key, result in report.completed.items():
                workload, config, n_accesses = by_key[job_key]
                _RESULT_CACHE[(workload, n_accesses, config)] = result
                if store is not None:
                    store.put(workload, n_accesses, config, result)
        if store is not None and host_specs:
            # Fold the fleet's host shards into the main log (deduped by
            # config fingerprint; the main log wins ties) and drop them.
            store_mod.merge_shards(store)
        if store is not None and report.ok and not report.interrupted and report.aborted is None:
            store.clear_progress()  # campaign finished; markers are stale
        if store is not None:
            report.store_health = store.health()

        if registry is not None:
            counter = registry.counter
            counter("campaign.jobs").inc(len(pending))
            counter("campaign.completed").inc(report.executed)
            counter("campaign.failed").inc(report.failed)
            counter("campaign.skipped").inc(report.skipped)
            counter("campaign.retried").inc(report.retried)
            counter("campaign.recycled").inc(report.recycled)
            if report.hosts_lost:
                counter("campaign.hosts_lost").inc(report.hosts_lost)
            if report.reassigned:
                counter("campaign.reassigned").inc(report.reassigned)
            if store is not None and store.degraded:
                counter("campaign.store_degraded").inc()

    if collector is not None:
        if registry is not None:
            # Final campaign snapshot rides in the trace, added directly
            # (not via span_cb, which would merge it back into itself).
            collector.add(
                {
                    "schema": obs_spans.SCHEMA,
                    "ev": "metrics",
                    "name": "campaign",
                    "t": time.time(),
                    "pid": os.getpid(),
                    "metrics": registry.to_dict(),
                }
            )
        # Safety sweep: the supervisor already closed spans of dead
        # workers; anything still open here is closed as aborted rather
        # than written dangling.
        collector.close_aborted()
        stamp = f"{os.getpid()}-{time.time_ns()}"
        path = collector.write(
            store_mod.default_obs_dir() / f"trace-campaign-{stamp}.jsonl"
        )
        report.trace_path = str(path)
    elif owns_registry and outer_sink is None:
        # Metrics without tracing: the aggregated snapshot would vanish
        # with this registry, so persist it standalone.
        stamp = f"{os.getpid()}-{time.time_ns()}"
        path = store_mod.default_obs_dir() / f"metrics-campaign-{stamp}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(registry.to_dict(), handle, indent=2)
            handle.write("\n")
    if obs_profile.profile_mode() is not None:
        report.profile_dir = str(obs_profile.profile_dir())
    return report
