"""Persistent, checkpointed result store for simulation campaigns.

The in-process result cache (:mod:`repro.sim.runner`) evaporates when
the process exits; for a ~150-simulation campaign that means one crash
throws away hours of work.  :class:`ResultStore` is the durable tier
underneath it: an append-only JSON-lines file of validated
:class:`~repro.sim.results.SimResult` records keyed by
``(workload, accesses, config fingerprint)``.

Design points:

* **Write-through, append-only.**  ``put`` validates, appends one
  line, and fsyncs — a killed campaign keeps every completed result.
* **Checksummed framing.**  Every record carries a crc32 of its own
  canonical JSON (schema minor version bump); bit rot and partially
  flushed lines are detected on load instead of being plotted.
  Records written before the checksum era load fine (the crc check
  only applies when the field is present).
* **Torn tail vs quarantine.**  A crash mid-append leaves a final
  chunk with no terminating newline — ``json.dumps`` output never
  contains a raw newline, so "missing terminator" identifies a torn
  write precisely.  Torn tails are truncated and counted
  (``torn_truncated``); only *complete* lines that are unparsable,
  checksum-mismatched, or invariant-violating are quarantined.
* **Advisory locking.**  Loads take a shared ``flock``, appends,
  rewrites and compactions an exclusive one, both with a bounded wait
  and stale-holder diagnostics (:mod:`repro.util.locking`).  The index
  is invalidated by (mtime_ns, size), so concurrent writers observe
  each other's appends on the next read.
* **Compaction.**  Superseded duplicates (same key re-put) are dead
  weight; once they exceed half the file past a minimum size, the log
  is rewritten under exclusive lock keeping only the live record per
  key (foreign-schema lines are preserved untouched).
* **Graceful degradation.**  Write failures get a bounded
  retry+backoff; if the medium stays broken (ENOSPC, EIO, lock never
  acquired) the store demotes itself to in-memory-only instead of
  killing the campaign: ``degraded``/``lost_writes`` record the event,
  the campaign completes, and the CLI reports ``StoreDegraded`` with a
  nonzero exit.
* **Schema versioning.**  Records carry ``schema``; records written by
  an incompatible store version are ignored (treated as absent), so a
  format change can never resurrect stale bytes as results.
* **Config-hash invalidation.**  The key includes a SHA-256
  fingerprint of the full :class:`~repro.sim.config.SimulationConfig`
  (machine parameters included), so any config change misses cleanly.

The *active store* module global is how the rest of the package opts
in: :func:`active_store` returns the explicitly installed store, else
one built from ``REPRO_STORE_DIR`` (``REPRO_NO_STORE`` force-disables
both).  ``simulate()`` reads and writes through whatever is active.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs import metrics as obs_metrics
from repro.sim.config import SimulationConfig
from repro.sim.results import SimResult, validate_result
from repro.util.locking import FileLock, LockTimeout

__all__ = [
    "COMPACT_GARBAGE_RATIO",
    "COMPACT_MIN_RECORDS",
    "ResultStore",
    "SCHEMA_MINOR",
    "SCHEMA_VERSION",
    "active_store",
    "clear_active_store",
    "config_fingerprint",
    "default_obs_dir",
    "default_store_dir",
    "list_shards",
    "merge_shards",
    "set_active_store",
    "store_from_env",
    "use_store",
]

#: bump when the record layout or SimResult payload shape changes;
#: older records are then invisible (and harmless).
SCHEMA_VERSION = 1
#: compatible additions within a schema version; minor 1 added the
#: per-record ``crc`` field (crc32 of the canonical record sans crc).
SCHEMA_MINOR = 1

STORE_DIR_ENV = "REPRO_STORE_DIR"
NO_STORE_ENV = "REPRO_NO_STORE"
#: override (seconds) for how long store operations wait on the lock.
LOCK_TIMEOUT_ENV = "REPRO_STORE_LOCK_TIMEOUT"

#: bounded retry for transient write failures: attempts beyond the
#: first, with exponential backoff starting at WRITE_BACKOFF seconds.
WRITE_RETRIES = 3
WRITE_BACKOFF = 0.02

#: compaction triggers once the log holds at least MIN_RECORDS record
#: lines and more than GARBAGE_RATIO of them are superseded duplicates.
COMPACT_MIN_RECORDS = 32
COMPACT_GARBAGE_RATIO = 0.5

_LOCK_WAIT_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 30.0)

#: (workload, accesses, config fingerprint)
StoreKey = Tuple[str, int, str]


def config_fingerprint(config: SimulationConfig) -> str:
    """Stable short hash of every parameter of a configuration.

    ``SimulationConfig`` is a frozen dataclass tree of scalars, so its
    ``repr`` is canonical and deterministic across processes; hashing
    it means *any* parameter change (prefetcher, core, hierarchy,
    label) invalidates stored results for that configuration.

    The ``sanitize`` field is excluded: invariant checking observes a
    run without changing its results, so a sanitized campaign resumes
    from (and writes to) the same checkpoints as an unsanitized one.
    """
    if getattr(config, "sanitize", None) is not None:
        config = replace(config, sanitize=None)
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


def _checksum(record: Dict[str, Any]) -> int:
    """crc32 of the record's canonical JSON, excluding the crc itself.

    ``sort_keys`` makes the digest independent of key order, so a
    record survives being parsed and re-serialised by other tooling.
    """
    body = {k: v for k, v in record.items() if k != "crc"}
    text = json.dumps(body, sort_keys=True, separators=(",", ":"), allow_nan=False)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def _frame(record: Dict[str, Any]) -> str:
    """Serialise a record with its checksum stamped in."""
    framed = dict(record)
    framed["crc"] = _checksum(framed)
    return json.dumps(framed, separators=(",", ":"), allow_nan=False)


def _maybe_io_fault(op_key: str, attempt: int) -> Optional[str]:
    """Deterministic injected I/O fault for this operation, if any."""
    # imported lazily: resilience pulls in the whole supervision layer
    from repro.sim.resilience import maybe_inject_io_fault

    return maybe_inject_io_fault(op_key, attempt)


@dataclass
class _ScanState:
    """Everything one pass over the log file learns."""

    index: Dict[StoreKey, SimResult] = field(default_factory=dict)
    #: surviving lines in file order (complete, decodable or foreign).
    good: List[str] = field(default_factory=list)
    #: (line number, text, reason) for quarantine-worthy lines.
    bad: List[Tuple[int, str, str]] = field(default_factory=list)
    #: latest surviving line per key (compaction keeps exactly these).
    latest: Dict[StoreKey, str] = field(default_factory=dict)
    #: foreign-schema lines, preserved verbatim.
    foreign: List[str] = field(default_factory=list)
    stale: int = 0
    #: schema-matching record lines that decoded cleanly (live + superseded).
    records: int = 0
    checksummed: int = 0
    #: bytes of partial, newline-less tail chunk (0 = no torn tail).
    torn_bytes: int = 0
    size: int = 0

    @property
    def needs_repair(self) -> bool:
        return bool(self.bad) or self.torn_bytes > 0

    @property
    def garbage(self) -> int:
        return self.records - len(self.index)


class ResultStore:
    """Append-only, checksummed, lock-coordinated JSON-lines store.

    ``results_name`` selects which log file in ``root`` this object
    fronts.  The default is the main campaign log; fleet host agents
    pass ``shard-<host>.jsonl`` so every host appends to its *own* log
    (no cross-host lock contention, no interleaved writers) and the
    coordinator later folds the shards into the main log with
    :func:`merge_shards`.  A non-default name gets its own lock,
    quarantine, and progress siblings (``<stem>.lock`` etc. — extensions
    chosen so ``shard-*.jsonl`` globs exactly the shard result logs).
    """

    def __init__(
        self, root: Union[str, Path], results_name: str = "results.jsonl"
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / results_name
        stem = Path(results_name).stem
        if results_name == "results.jsonl":
            self.quarantine_path = self.root / "quarantine.jsonl"
            self.progress_path = self.root / "progress.jsonl"
            lock_name = "store.lock"
        else:
            self.quarantine_path = self.root / f"{stem}.quarantine"
            self.progress_path = self.root / f"{stem}.progress"
            lock_name = f"{stem}.lock"
        self._lock = FileLock(self.root / lock_name, timeout=_lock_timeout())
        self._index: Optional[Dict[StoreKey, SimResult]] = None
        self._index_stat: Optional[Tuple[int, int]] = None
        self._latest: Dict[StoreKey, str] = {}
        self._foreign: List[str] = []
        self._records = 0
        self._progress: Optional[Dict[StoreKey, Dict[str, Any]]] = None
        self._progress_stat: Optional[Tuple[int, int]] = None
        #: corrupt records found (and quarantined) by the last load.
        self.quarantined = 0
        #: records ignored because their schema version is foreign.
        self.stale = 0
        #: torn (partial, newline-less) tails truncated by this object.
        self.torn_truncated = 0
        #: superseded records dropped by compaction through this object.
        self.compacted = 0
        #: True once persistence failed for good: writes stay in memory.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        #: puts (and progress markers) accepted but not persisted.
        self.lost_writes = 0

    # -- scanning and repair ----------------------------------------------

    def _decode(self, record: Dict[str, Any]) -> Tuple[StoreKey, SimResult]:
        """Extract and validate one parsed record; ValueError if corrupt."""
        key = (
            str(record["workload"]),
            int(record["accesses"]),
            str(record["config"]),
        )
        result = SimResult.from_dict(record["result"])
        validate_result(result)
        if result.workload != key[0]:
            raise ValueError(
                f"workload mismatch: key {key[0]!r} vs payload {result.workload!r}"
            )
        return key, result

    def _scan(self) -> _ScanState:
        """One read-only pass over the log; classifies every line.

        Caller holds (at least) the shared lock.  A final chunk with no
        terminating newline is a torn append — ``json.dumps`` output
        cannot contain a raw newline, so the terminator is the commit
        point.  Complete lines that fail to parse, fail their
        checksum, or violate result invariants are quarantine-worthy.
        """
        state = _ScanState()
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return state
        state.size = len(data)
        if not data:
            return state
        chunks = data.split(b"\n")
        lines = chunks[:-1]
        if not data.endswith(b"\n"):
            state.torn_bytes = len(chunks[-1])
        for lineno, raw in enumerate(lines, start=1):
            try:
                text = raw.decode("utf-8").strip()
            except UnicodeDecodeError:
                state.bad.append((lineno, repr(raw[:256]), "undecodable bytes"))
                continue
            if not text:
                continue
            try:
                record = json.loads(text)
            except ValueError:
                state.bad.append((lineno, text, "unparsable JSON"))
                continue
            if not isinstance(record, dict) or "schema" not in record:
                state.bad.append((lineno, text, "missing schema version"))
                continue
            if record["schema"] != SCHEMA_VERSION:
                state.stale += 1  # foreign version: ignore, keep
                state.foreign.append(text)
                state.good.append(text)
                continue
            if "crc" in record:
                try:
                    stored = int(record["crc"])
                except (TypeError, ValueError):
                    stored = -1
                if stored != _checksum(record):
                    state.bad.append((lineno, text, "checksum mismatch"))
                    continue
            try:
                key, result = self._decode(record)
            except (ValueError, KeyError, TypeError) as exc:
                state.bad.append((lineno, text, f"invalid record: {exc}"))
                continue
            state.records += 1
            if "crc" in record:
                state.checksummed += 1
            state.index[key] = result  # last write wins
            state.latest[key] = text
            state.good.append(text)
        return state

    def _repair_locked(self, state: _ScanState) -> None:
        """Quarantine bad lines / truncate a torn tail.  Exclusive lock held."""
        if state.bad:
            with self.quarantine_path.open("a", encoding="utf-8") as handle:
                for _, text, _ in state.bad:
                    handle.write(text + "\n")
            self._rewrite(state.good)  # also drops any torn tail
        elif state.torn_bytes:
            os.truncate(self.path, state.size - state.torn_bytes)
        if state.torn_bytes:
            self.torn_truncated += 1
            self._count("store.torn_truncated")
        if state.bad:
            self._count("store.quarantined", len(state.bad))

    def _install(self, state: _ScanState) -> None:
        """Adopt a scan as the current in-memory view of the log."""
        self._index = state.index
        self._latest = state.latest
        self._foreign = state.foreign
        self._records = state.records
        self.quarantined = len(state.bad)
        self.stale = state.stale
        self._index_stat = self._stat()

    def _stat(self) -> Optional[Tuple[int, int]]:
        """(mtime_ns, size) of the log, or None if absent/unreadable."""
        try:
            st = os.stat(self.path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def _load(self) -> Dict[StoreKey, SimResult]:
        """The live index, rescanning when the file changed underneath us."""
        if self.degraded:
            if self._index is None:
                self._index = {}
            return self._index
        if self._index is not None and self._stat() == self._index_stat:
            return self._index
        try:
            with self._lock.shared() as waited:
                self._observe_lock_wait(waited)
                state = self._scan()
            if state.needs_repair:
                # upgrade to exclusive; rescan first — a concurrent
                # loader may have repaired while we waited.
                with self._lock.exclusive() as waited:
                    self._observe_lock_wait(waited)
                    state = self._scan()
                    self._repair_locked(state)
            self._install(state)
        except LockTimeout as exc:
            self._degrade(exc)
            if self._index is None:
                self._index = {}
        return self._index

    def _refresh_locked(self) -> Dict[StoreKey, SimResult]:
        """Rescan+repair+install under an already-held exclusive lock."""
        if self._index is not None and self._stat() == self._index_stat:
            return self._index
        state = self._scan()
        if state.needs_repair:
            self._repair_locked(state)
        self._install(state)
        return self._index

    def _rewrite(self, lines: List[str]) -> None:
        """Atomically replace the store file with the surviving records."""
        tmp = self.path.with_suffix(".jsonl.tmp")
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                for text in lines:
                    handle.write(text + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        finally:
            # a mid-write failure must not leave the temp file behind
            tmp.unlink(missing_ok=True)

    # -- metrics helpers ---------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        registry = obs_metrics.active_registry()
        if registry is not None and delta:
            registry.counter(name).inc(delta)

    def _observe_lock_wait(self, waited: float) -> None:
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.histogram(
                "store.lock_wait_s", buckets=_LOCK_WAIT_BUCKETS
            ).observe(waited)

    # -- reading ----------------------------------------------------------

    def get(
        self, workload: str, accesses: int, config: SimulationConfig
    ) -> Optional[SimResult]:
        """The stored result for this (workload, scale, config), if any."""
        return self._load().get((workload, accesses, config_fingerprint(config)))

    def __contains__(self, key: StoreKey) -> bool:
        return key in self._load()

    def __len__(self) -> int:
        return len(self._load())

    def keys(self) -> Iterator[StoreKey]:
        return iter(self._load())

    # -- writing ----------------------------------------------------------

    def put(
        self,
        workload: str,
        accesses: int,
        config: SimulationConfig,
        result: SimResult,
    ) -> None:
        """Validate and durably append one result (write-through).

        Never raises on I/O trouble: transient failures are retried
        with backoff, persistent ones demote the store to
        in-memory-only (:attr:`degraded`) so the campaign completes and
        the loss is *reported* rather than fatal.  Validation errors
        still raise — an invalid result must never enter the store.
        """
        validate_result(result)
        key = (workload, accesses, config_fingerprint(config))
        record = {
            "schema": SCHEMA_VERSION,
            "minor": SCHEMA_MINOR,
            "workload": workload,
            "accesses": accesses,
            "config": key[2],
            "config_label": config.resolved_label(),
            "result": result.to_dict(),
        }
        line = _frame(record)
        if not self.degraded:
            try:
                with self._lock.exclusive() as waited:
                    self._observe_lock_wait(waited)
                    self._refresh_locked()  # also repairs any torn tail
                    try:
                        self._append_locked(line, op_key=f"{workload}@{accesses}")
                    except OSError as exc:
                        self._degrade(exc)
                    else:
                        self._records += 1
                        self._latest[key] = line
                        self._maybe_compact_locked()
                        self._index_stat = self._stat()
            except LockTimeout as exc:
                self._degrade(exc)
        index = self._index if self._index is not None else {}
        self._index = index
        index[key] = result
        if self.degraded:
            self.lost_writes += 1
            self._count("store.lost_writes")

    def _append_locked(self, line: str, op_key: str) -> None:
        """Append one framed line with fsync, bounded retry, and faults.

        An injected ``io-torn`` fault writes a newline-less prefix and
        *returns success* — that is what a crash mid-flush looks like
        to the next reader, which truncates it (and counts it).
        """
        data = (line + "\n").encode("utf-8")
        last_exc: Optional[OSError] = None
        for attempt in range(1, WRITE_RETRIES + 2):
            if attempt > 1:
                self._count("store.write_retries")
                time.sleep(WRITE_BACKOFF * 2 ** (attempt - 2))
            kind = _maybe_io_fault(f"store|{self.path.name}|{op_key}", attempt)
            try:
                if kind == "io-enospc":
                    raise OSError(errno.ENOSPC, "injected: no space left on device")
                if kind == "io-eio":
                    raise OSError(errno.EIO, "injected: input/output error")
                payload = data if kind != "io-torn" else data[: max(len(data) // 2, 1)]
                with self.path.open("ab") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                return
            except OSError as exc:
                last_exc = exc
        assert last_exc is not None
        raise last_exc

    def _degrade(self, exc: BaseException) -> None:
        """Fall back to in-memory-only operation, permanently."""
        if not self.degraded:
            self.degraded = True
            self.degraded_reason = f"{type(exc).__name__}: {exc}"
            self._count("store.degraded")
        if self._index is None:
            self._index = {}

    def clear(self) -> None:
        """Drop every stored record and progress marker (keeps quarantine)."""
        try:
            with self._lock.exclusive():
                self.path.unlink(missing_ok=True)
                self.progress_path.unlink(missing_ok=True)
        except (LockTimeout, OSError):
            pass
        self._index = {}
        self._index_stat = self._stat()
        self._latest = {}
        self._foreign = []
        self._records = 0
        self._progress = {}
        self._progress_stat = None
        self.quarantined = 0
        self.stale = 0

    # -- shard merging -----------------------------------------------------

    def merge_from(self, other: "ResultStore") -> int:
        """Fold another store's live records into this one; returns count.

        Dedupe is by store key — ``(workload, accesses, config
        fingerprint)`` — and *this* store wins ties: a record already
        present here is never overwritten by a shard's copy (both were
        validated results of the same deterministic simulation, so the
        copies are interchangeable; keeping ours avoids churning the
        log).  Adopted records are re-appended through the normal
        checksummed, locked, fault-injected write path, so a merged log
        is indistinguishable from one written directly.  Never raises
        on I/O trouble: like :meth:`put`, persistent failure degrades
        this store to in-memory-only and the adopted results survive in
        the index (counted as ``lost_writes``).
        """
        theirs = other._load()  # a repairing scan under the shard's lock
        adopted = 0
        if not self.degraded:
            try:
                with self._lock.exclusive() as waited:
                    self._observe_lock_wait(waited)
                    self._refresh_locked()
                    for key, result in theirs.items():
                        if key in self._index:
                            continue
                        line = other._latest.get(key) or _frame(
                            {
                                "schema": SCHEMA_VERSION,
                                "minor": SCHEMA_MINOR,
                                "workload": key[0],
                                "accesses": key[1],
                                "config": key[2],
                                "config_label": result.config_label,
                                "result": result.to_dict(),
                            }
                        )
                        try:
                            self._append_locked(
                                line, op_key=f"merge|{key[0]}@{key[1]}"
                            )
                        except OSError as exc:
                            self._degrade(exc)
                            break
                        self._records += 1
                        self._latest[key] = line
                        self._index[key] = result
                        adopted += 1
                    self._maybe_compact_locked()
                    self._index_stat = self._stat()
            except LockTimeout as exc:
                self._degrade(exc)
        if self.degraded:
            index = self._index if self._index is not None else {}
            self._index = index
            for key, result in theirs.items():
                if key not in index:
                    index[key] = result
                    adopted += 1
                    self.lost_writes += 1
                    self._count("store.lost_writes")
        if adopted:
            self._count("store.merged_records", adopted)
        return adopted

    # -- compaction --------------------------------------------------------

    def compact(self, force: bool = False) -> int:
        """Drop superseded duplicate records; returns how many were dropped.

        Runs under the exclusive lock.  Without ``force`` the rewrite
        only happens past the garbage threshold (``COMPACT_MIN_RECORDS``
        record lines, more than ``COMPACT_GARBAGE_RATIO`` superseded).
        """
        if self.degraded:
            return 0
        try:
            with self._lock.exclusive() as waited:
                self._observe_lock_wait(waited)
                self._refresh_locked()
                return self._compact_locked(force=force)
        except LockTimeout as exc:
            self._degrade(exc)
            return 0

    def _garbage_exceeds_threshold(self) -> bool:
        live = len(self._index or {})
        return (
            self._records >= COMPACT_MIN_RECORDS
            and self._records - live > self._records * COMPACT_GARBAGE_RATIO
        )

    def _maybe_compact_locked(self) -> None:
        if self._garbage_exceeds_threshold():
            self._compact_locked(force=True)

    def _compact_locked(self, force: bool) -> int:
        """Rewrite keeping one line per key.  Exclusive lock held."""
        dropped = self._records - len(self._latest)
        if dropped <= 0 or not (force or self._garbage_exceeds_threshold()):
            return 0
        try:
            self._rewrite(self._foreign + list(self._latest.values()))
        except OSError as exc:
            self._degrade(exc)
            return 0
        self._records = len(self._latest)
        self._index_stat = self._stat()
        self.compacted += dropped
        self._count("store.compactions")
        self._count("store.compacted_records", dropped)
        return dropped

    # -- integrity tooling -------------------------------------------------

    def verify(self) -> Dict[str, Any]:
        """Read-only integrity report; never modifies the store."""
        try:
            with self._lock.shared() as waited:
                self._observe_lock_wait(waited)
                state = self._scan()
        except LockTimeout:
            state = self._scan()  # a report beats no report
        return {
            "path": str(self.path),
            "size_bytes": state.size,
            "records": state.records,
            "live": len(state.index),
            "garbage": state.garbage,
            "stale": state.stale,
            "checksummed": state.checksummed,
            "legacy": state.records - state.checksummed,
            "torn_tail": state.torn_bytes > 0,
            "bad": [f"line {n}: {reason}" for n, _, reason in state.bad],
        }

    def repair(self) -> Dict[str, Any]:
        """Force a fresh repairing load; returns :meth:`health`."""
        self._index = None
        self._index_stat = None
        self._load()
        return self.health()

    def health(self) -> Dict[str, Any]:
        """Current durability counters, for campaign summaries."""
        return {
            "records": len(self._load()),
            "quarantined": self.quarantined,
            "stale": self.stale,
            "torn_truncated": self.torn_truncated,
            "compacted": self.compacted,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "lost_writes": self.lost_writes,
        }

    # -- mid-run progress markers -----------------------------------------
    #
    # Coarse checkpoints of *incomplete* jobs, fed by worker heartbeats.
    # Append-only JSON lines, last write wins; flushed but not fsynced
    # and written without taking the lock (losing a marker costs
    # nothing — the job re-runs anyway, the marker only reports how far
    # a preempted job got).  Markers are checksummed like results;
    # damaged ones are skipped, never quarantined.

    def _load_progress(self) -> Dict[StoreKey, Dict[str, Any]]:
        stat = self._progress_stat_now()
        if self._progress is not None and stat == self._progress_stat:
            return self._progress
        progress: Dict[StoreKey, Dict[str, Any]] = {}
        if self.progress_path.exists():
            with self.progress_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    text = line.strip()
                    if not text:
                        continue
                    try:
                        record = json.loads(text)
                        if (
                            not isinstance(record, dict)
                            or record.get("schema") != SCHEMA_VERSION
                        ):
                            continue
                        if "crc" in record and int(record["crc"]) != _checksum(record):
                            continue  # damaged marker: worthless, skip
                        key = (
                            str(record["workload"]),
                            int(record["accesses"]),
                            str(record["config"]),
                        )
                        progress[key] = record  # last write wins
                    except (ValueError, KeyError, TypeError):
                        continue  # a torn marker line is worthless; skip
        self._progress = progress
        self._progress_stat = stat
        return progress

    def _progress_stat_now(self) -> Optional[Tuple[int, int]]:
        try:
            st = os.stat(self.progress_path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def put_progress(
        self,
        workload: str,
        accesses: int,
        config: SimulationConfig,
        done: int,
        total: int,
        sim_time: float,
    ) -> None:
        """Append one mid-run checkpoint marker for an incomplete job."""
        key = (workload, accesses, config_fingerprint(config))
        record = {
            "schema": SCHEMA_VERSION,
            "minor": SCHEMA_MINOR,
            "workload": workload,
            "accesses": accesses,
            "config": key[2],
            "done": int(done),
            "total": int(total),
            "sim_time": float(sim_time),
        }
        progress = self._load_progress()
        progress[key] = record
        if self.degraded:
            return
        line = _frame(record)
        kind = _maybe_io_fault(f"progress|{workload}@{accesses}", 1)
        if kind in ("io-enospc", "io-eio"):
            return  # advisory write: drop it, don't degrade the store
        data = (line + "\n").encode("utf-8")
        if kind == "io-torn":
            data = data[: max(len(data) // 2, 1)]
        try:
            with self.progress_path.open("ab") as handle:
                handle.write(data)
                handle.flush()
        except OSError:
            return  # advisory write: losing it is fine
        self._progress_stat = self._progress_stat_now()

    def get_progress(
        self, workload: str, accesses: int, config: SimulationConfig
    ) -> Optional[Dict[str, Any]]:
        """The latest checkpoint marker for this job, if any."""
        key = (workload, accesses, config_fingerprint(config))
        return self._load_progress().get(key)

    def progress_entries(self) -> Dict[StoreKey, Dict[str, Any]]:
        """All latest markers, keyed like the result index."""
        return dict(self._load_progress())

    def clear_progress(self) -> None:
        """Drop every checkpoint marker (e.g. after a campaign finishes)."""
        try:
            self.progress_path.unlink(missing_ok=True)
        except OSError:
            pass  # advisory file on possibly-broken media
        self._progress = {}
        self._progress_stat = None


def _lock_timeout() -> float:
    env = os.environ.get(LOCK_TIMEOUT_ENV)
    if env:
        try:
            return float(env)
        except ValueError:
            pass
    return 30.0


def list_shards(store: ResultStore) -> List[Path]:
    """Per-host shard logs present in the store root, sorted by name."""
    return sorted(
        path
        for path in store.root.glob("shard-*.jsonl")
        if path != store.path
    )


def merge_shards(store: ResultStore, remove: bool = True) -> Tuple[int, int]:
    """Fold every ``shard-<host>.jsonl`` in the root into the main log.

    Returns ``(shards merged, records adopted)``.  With ``remove`` a
    fully merged shard's log, lock, and progress files are deleted —
    but only while the main store is healthy, so a merge that degraded
    mid-way never destroys the only durable copy of a shard's results.
    Shard quarantine files are always kept: they are evidence.

    Idempotent and crash-safe: dedupe is by store key, so re-running
    after a coordinator crash (shards present, some already folded)
    adopts only what is missing.  This is the fleet-wide resume story —
    any coordinator can pick up whatever shards the hosts left behind.
    """
    merged = 0
    adopted = 0
    for path in list_shards(store):
        shard = ResultStore(store.root, results_name=path.name)
        adopted += store.merge_from(shard)
        merged += 1
        if remove and not store.degraded:
            stem = path.stem
            for name in (path.name, f"{stem}.lock", f"{stem}.progress"):
                try:
                    (store.root / name).unlink(missing_ok=True)
                except OSError:
                    pass  # a leftover shard file re-merges harmlessly later
    return merged, adopted


# ---------------------------------------------------------------------------
# The active store (what simulate()/prewarm() write through to)
# ---------------------------------------------------------------------------

_ACTIVE_STORE: Optional[ResultStore] = None
_ACTIVE_EXPLICIT = False


def default_store_dir() -> Path:
    """``REPRO_STORE_DIR`` if set, else ``~/.cache/repro-tcp``."""
    env = os.environ.get(STORE_DIR_ENV)
    if env:
        return Path(env)
    return Path(os.path.expanduser("~")) / ".cache" / "repro-tcp"


def default_obs_dir() -> Path:
    """Where observability output (traces, metrics snapshots) lands.

    Next to the *active* store when one is installed — a campaign's
    trace belongs with the results it describes — else under the
    default store root.  Mirrors :func:`default_trace_cache_dir`.
    """
    store = active_store()
    if store is not None:
        return store.root / "obs"
    return default_store_dir() / "obs"


def default_trace_cache_dir() -> Path:
    """Where generated traces are cached by default: next to the store.

    The trace cache (:mod:`repro.workloads.io`) and the result store
    are two tiers of the same campaign persistence, so they live under
    the same root unless ``REPRO_TRACE_CACHE`` says otherwise.
    """
    return default_store_dir() / "traces"


def store_from_env() -> Optional[ResultStore]:
    """A store configured purely by the environment, or ``None``.

    ``REPRO_STORE_DIR=<dir>`` enables persistence at that directory;
    ``REPRO_NO_STORE`` (any non-empty value) force-disables it.
    """
    if os.environ.get(NO_STORE_ENV):
        return None
    env = os.environ.get(STORE_DIR_ENV)
    if not env:
        return None
    return ResultStore(env)


def set_active_store(store: Optional[ResultStore]) -> Optional[ResultStore]:
    """Install the store ``simulate()`` writes through to; returns the old.

    ``None`` means "explicitly no store" (persistence off even if
    ``REPRO_STORE_DIR`` is set); use :func:`clear_active_store` to
    return to environment-driven behaviour.
    """
    global _ACTIVE_STORE, _ACTIVE_EXPLICIT
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = store
    _ACTIVE_EXPLICIT = True
    return previous


def clear_active_store() -> None:
    """Forget any explicit store; :func:`active_store` follows the env."""
    global _ACTIVE_STORE, _ACTIVE_EXPLICIT
    _ACTIVE_STORE = None
    _ACTIVE_EXPLICIT = False


def active_store() -> Optional[ResultStore]:
    """The store the simulation layer should use right now (or None)."""
    if os.environ.get(NO_STORE_ENV):
        return None
    if _ACTIVE_EXPLICIT:
        return _ACTIVE_STORE
    return store_from_env()


@contextmanager
def use_store(store: Optional[ResultStore]):
    """Context manager: temporarily make ``store`` the active store."""
    global _ACTIVE_STORE, _ACTIVE_EXPLICIT
    previous, previous_explicit = _ACTIVE_STORE, _ACTIVE_EXPLICIT
    _ACTIVE_STORE = store
    _ACTIVE_EXPLICIT = True
    try:
        yield store
    finally:
        _ACTIVE_STORE, _ACTIVE_EXPLICIT = previous, previous_explicit
