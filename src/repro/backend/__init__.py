"""Pluggable simulation backends.

The per-access state machines run behind the :class:`~repro.backend.
base.Backend` interface; :func:`resolve_backend` picks the
implementation for a run from ``SimulationConfig.backend``, the
``REPRO_BACKEND`` environment variable, or the default:

``python``
    the reference interpreted loop (:mod:`repro.cpu.core` +
    :mod:`repro.memory` — the PR 3 engine path, frozen by the golden
    corpus and the 156-run oracle);
``numpy``
    the batch-stepping engine (:mod:`repro.backend.vector`): trace
    planes precomputed as ndarrays, hit runs stepped in batches, a
    scalar epilogue for misses/prefetch/MSHR events — bit-identical to
    ``python`` by contract and by differential test.
``native``
    the numpy batch path with the scalar epilogue compiled to C
    (:mod:`repro.backend.native`); requires the ``_native`` extension
    (built on demand, or via ``pip install .[native]``) and falls back
    to ``numpy`` with a once-per-process warning when it is missing.
"""

from __future__ import annotations

from repro.backend.base import (
    BACKEND_ENV,
    Backend,
    available_backends,
    backend_name,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.backend.native import NativeBackend
from repro.backend.python import PythonBackend
from repro.backend.vector import NumpyBackend

__all__ = [
    "BACKEND_ENV",
    "Backend",
    "NativeBackend",
    "NumpyBackend",
    "PythonBackend",
    "available_backends",
    "backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

register_backend("python", PythonBackend)
register_backend("numpy", NumpyBackend)
register_backend("native", NativeBackend)
