"""The backend layer: parity with, and speedup over, the python backend.

The numpy batch-stepping backend (:mod:`repro.backend.vector`) claims
to be a pure performance change.  This module checks both halves of
that claim:

* **parity** — on the same trace and configuration the numpy backend
  must commit exactly the same cycles, instructions, and hierarchy
  statistics as the ``python`` reference backend, including for the
  configurations it handles by falling back to the reference loop;
* **performance** — the numpy/python throughput ratio measured by
  :func:`repro.bench.backend.run_backend_bench` must not regress by
  more than 20% against the committed baseline (``BENCH_backend.json``
  at the repository root).  The ratio compares two backends timed on
  the same interpreter and host, so the gate is meaningful on any CI
  machine even though raw accesses/sec are not.

Scale selection follows the shared benchmark convention
(``REPRO_BENCH_SCALE``); the regression gate uses fewer repeats at
``quick`` scale, trading noise margin for runtime, which the 20%
tolerance absorbs.  Note the gate compares ratios measured at possibly
different scales: at ``quick`` scale the short cold-start-dominated
traces batch almost nothing, so the fresh ratio reflects mostly the
scalar epilogue — the committed baseline's 20% floor still holds
because the epilogue alone clears it.
"""

import json
import sys
import warnings
from pathlib import Path

import pytest

from repro.backend import get_backend
from repro.bench.backend import SCHEMA, run_backend_bench
from repro.memory import MemoryHierarchy
from repro.sim.config import SimulationConfig
from repro.workloads import Scale, generate

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_backend.json"

#: covers the batched path (none, nextline, tcp-8k) and every fallback
#: reason the numpy backend knows (dbcp-2m observes the access stream,
#: hybrid-8k gates L1 promotions).
PARITY_PREFETCHERS = ("none", "nextline", "tcp-8k", "dbcp-2m", "hybrid-8k")


def _run_both(workload: str, prefetcher: str, warmup: int = 0):
    """Run one trace under the python and numpy backends."""
    trace = generate(workload, Scale.QUICK)
    config = SimulationConfig.for_prefetcher(prefetcher)

    machines = {}
    results = {}
    for name in ("python", "numpy"):
        machine = MemoryHierarchy(config.hierarchy)
        machine.attach_prefetcher(config.build_prefetcher())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            results[name] = get_backend(name).run(
                trace, machine, config.core, warmup=warmup
            )
        machines[name] = machine
    return results, machines


@pytest.mark.parametrize("prefetcher", PARITY_PREFETCHERS)
@pytest.mark.parametrize("workload", ("swim", "mcf"))
def test_backends_commit_identical_results(workload, prefetcher):
    """Python and numpy backends agree bit-for-bit on every outcome."""
    results, machines = _run_both(workload, prefetcher)
    assert results["numpy"].cycles == results["python"].cycles
    assert results["numpy"].instructions == results["python"].instructions
    assert results["numpy"].accesses == results["python"].accesses
    assert machines["numpy"].stats == machines["python"].stats


def test_backends_match_with_warmup():
    """Warmup bookkeeping (snapshot point, measured window) also agrees."""
    results, machines = _run_both("mcf", "tcp-8k", warmup=1000)
    assert results["numpy"].cycles == results["python"].cycles
    assert results["numpy"].instructions == results["python"].instructions
    assert machines["numpy"].stats == machines["python"].stats
    assert machines["numpy"].warmup_stats == machines["python"].warmup_stats


def test_backend_speedup_has_not_regressed(scale):
    """Fresh numpy/python ratio stays within 20% of the committed baseline.

    This is the CI backend-parity gate.  It re-measures the full
    default grid (which also re-asserts bit-identical results — the
    bench raises on any divergence) and compares geomean speedups; a
    >20% drop means an engine change gave back the backend's win.
    """
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    assert baseline["schema"] == SCHEMA, (
        "BENCH_backend.json was written by an incompatible benchmark "
        "version; regenerate it with `repro-tcp bench --backend numpy`"
    )
    repeats = 2 if scale is Scale.QUICK else 3
    fresh = run_backend_bench(scale=scale, repeats=repeats, log=sys.stderr)
    floor = baseline["geomean_speedup"] * 0.8
    assert fresh["geomean_speedup"] >= floor, (
        f"backend speedup regressed: fresh geomean "
        f"{fresh['geomean_speedup']:.2f}x is below 80% of the committed "
        f"baseline ({baseline['geomean_speedup']:.2f}x)"
    )
