"""Golden-oracle regression corpus.

Each file in ``tests/golden/`` freezes the full :class:`SimResult` of
one (workload, configuration) cell at QUICK scale, keyed by the
configuration's fingerprint.  The test replays every cell and compares
field by field — any behavioural drift in the core, hierarchy, or
prefetchers shows up as a named-field diff instead of a vague
downstream failure.

After an *intentional* behaviour change, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

and commit the updated corpus together with the change that caused it.
"""

import json
from pathlib import Path

import pytest

from repro.sim import SimulationConfig, simulate
from repro.sim.runner import clear_cache
from repro.sim.store import config_fingerprint
from repro.workloads import Scale

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The frozen cells: a spread of benchmarks and the paper's headline
#: configurations (kept small — each replay is a real QUICK run).
GOLDEN_CELLS = (
    ("swim", "base"),
    ("swim", "tcp-8k"),
    ("mcf", "tcp-8m"),
    ("gcc", "dbcp-2m"),
    ("fma3d", "hybrid-8k"),
)


def _config(label):
    if label == "base":
        return SimulationConfig.baseline()
    return SimulationConfig.for_prefetcher(label)


def _cell_path(bench, label, config):
    fingerprint = config_fingerprint(config)
    return GOLDEN_DIR / f"{bench}-{label}-quick-{fingerprint}.json"


def _flatten(payload, prefix=""):
    """dict tree -> {dotted.path: leaf} for field-by-field diffs."""
    flat = {}
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{path}."))
        else:
            flat[path] = value
    return flat


@pytest.mark.parametrize("bench,label", GOLDEN_CELLS)
def test_golden_cell(bench, label, request):
    config = _config(label)
    path = _cell_path(bench, label, config)
    clear_cache()
    result = simulate(bench, config, Scale.QUICK, use_cache=False)
    payload = {
        "schema": "repro-tcp/golden/v1",
        "workload": bench,
        "config_label": label,
        "accesses": Scale.QUICK.accesses,
        "fingerprint": config_fingerprint(config),
        "result": result.to_dict(),
    }

    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        # A fingerprint change orphans the old file; sweep stale cells
        # for this (bench, label) so the corpus never accretes garbage.
        for stale in GOLDEN_DIR.glob(f"{bench}-{label}-quick-*.json"):
            if stale != path:
                stale.unlink()
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return

    if not path.exists():
        pytest.fail(
            f"golden file missing for {bench}/{label} "
            f"(fingerprint {payload['fingerprint']}): {path.name}\n"
            "If the configuration changed intentionally, regenerate with "
            "--update-golden and commit the corpus."
        )

    golden = json.loads(path.read_text(encoding="utf-8"))
    expected = _flatten(golden["result"])
    actual = _flatten(payload["result"])
    assert set(expected) == set(actual), (
        "golden result shape drifted: "
        f"missing={sorted(set(expected) - set(actual))} "
        f"extra={sorted(set(actual) - set(expected))}"
    )
    diffs = [
        f"  {field}: golden={expected[field]!r} current={actual[field]!r}"
        for field in sorted(expected)
        if expected[field] != actual[field]
    ]
    assert not diffs, (
        f"{bench}/{label} drifted from golden ({len(diffs)} fields):\n"
        + "\n".join(diffs)
        + "\nIf intentional, regenerate with --update-golden."
    )


def test_no_orphaned_golden_files():
    """Every file in the corpus corresponds to a live cell."""
    if not GOLDEN_DIR.exists():
        pytest.skip("corpus not generated yet")
    live = {
        _cell_path(bench, label, _config(label)).name
        for bench, label in GOLDEN_CELLS
    }
    on_disk = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == live, (
        f"orphaned={sorted(on_disk - live)} missing={sorted(live - on_disk)}"
    )
