"""Figure 13: PHT size sweep (top) and miss-index-bit sweep (bottom).

Top: mean IPC over the suite for PHT sizes from 2 KB to 8 MB, with two
indexing policies — no miss-index bits (fully shared, the paper's main
curve) and the full miss index (private per-set history).  The paper
finds diminishing returns past 8 KB for the shared PHT, while the
full-index curve saturates only at megabyte scale.

Bottom: for a fixed 8 KB PHT, mean IPC as the number of miss-index bits
in the PHT index grows from 0 to 3.  More than one bit shrinks each
sub-table below usefulness and performance degrades.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import tcp_with_pht
from repro.experiments.base import ExperimentResult, suite_order
from repro.sim import SimulationConfig, simulate
from repro.sim.config import register_prefetcher
from repro.util.bitops import log2_exact
from repro.util.stats import geometric_mean
from repro.workloads import Scale

__all__ = ["run", "SHARED_SIZES", "FULL_INDEX_SIZES", "INDEX_BITS"]

KB = 1024
#: PHT sizes for the shared (n = 0) curve.
SHARED_SIZES = (2 * KB, 8 * KB, 32 * KB, 128 * KB, 512 * KB, 2048 * KB, 8192 * KB)
#: PHT sizes for the full-miss-index curve (needs >= 1024 sets).
FULL_INDEX_SIZES = (64 * KB, 256 * KB, 1024 * KB, 8192 * KB)
#: miss-index bit counts for the bottom sweep (8 KB PHT).
INDEX_BITS = (0, 1, 2, 3)


def _sweep_config(pht_bytes: int, index_bits: int) -> SimulationConfig:
    """Register and return a config for one (size, index-bits) point."""
    name = f"tcp-sweep-{pht_bytes // KB}k-n{index_bits}"
    register_prefetcher(
        name, lambda b=pht_bytes, n=index_bits: tcp_with_pht(b, miss_index_bits=n)
    )
    return SimulationConfig(prefetcher=name)


def _mean_ipc(config: SimulationConfig, names: Sequence[str], scale: Scale) -> float:
    return geometric_mean(simulate(name, config, scale).ipc for name in names)


def run(
    scale: Scale = Scale.STANDARD,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    names = suite_order(benchmarks)
    series: Dict[str, Dict[str, float]] = {
        "shared_pht_ipc": {},
        "full_index_pht_ipc": {},
        "index_bits_ipc": {},
    }
    rows: List[List[object]] = []

    base_ipc = _mean_ipc(SimulationConfig.baseline(), names, scale)
    rows.append(["baseline", "-", base_ipc])

    for size in SHARED_SIZES:
        ipc = _mean_ipc(_sweep_config(size, 0), names, scale)
        series["shared_pht_ipc"][f"{size // KB}KB"] = ipc
        rows.append([f"PHT {size // KB}KB, n=0", "size sweep (shared)", ipc])

    for size in FULL_INDEX_SIZES:
        sets = size // (8 * 4)  # 8 ways x 4 bytes/entry
        bits = min(10, log2_exact(sets))
        ipc = _mean_ipc(_sweep_config(size, bits), names, scale)
        series["full_index_pht_ipc"][f"{size // KB}KB"] = ipc
        rows.append([f"PHT {size // KB}KB, n={bits}", "size sweep (full index)", ipc])

    for bits in INDEX_BITS:
        ipc = _mean_ipc(_sweep_config(8 * KB, bits), names, scale)
        series["index_bits_ipc"][str(bits)] = ipc
        rows.append([f"PHT 8KB, n={bits}", "index-bit sweep", ipc])

    shared = series["shared_pht_ipc"]
    gain_to_8k = (shared["8KB"] / shared["2KB"] - 1.0) * 100.0
    gain_past_8k = (shared[f"{SHARED_SIZES[-1] // KB}KB"] / shared["8KB"] - 1.0) * 100.0
    notes = [
        f"Shared PHT: 2KB->8KB buys {gain_to_8k:+.1f}% mean IPC; growing "
        f"8KB->8MB buys only {gain_past_8k:+.1f}% more (the paper's "
        "diminishing-returns knee at 8KB).",
        "Index-bit sweep (8KB PHT): "
        + ", ".join(f"n={b}: {series['index_bits_ipc'][str(b)]:.3f}" for b in INDEX_BITS)
        + " — 0-1 bits comparable, more bits degrade.",
    ]
    return ExperimentResult(
        experiment="fig13",
        title="Mean IPC vs PHT size and vs miss-index bits",
        headers=["configuration", "sweep", "geomean IPC"],
        rows=rows,
        series=series,
        notes=notes,
    )
