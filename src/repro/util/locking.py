"""Advisory inter-process file locking with bounded waits.

The result store and the trace cache are both multi-writer once
campaigns run concurrently (sweep-as-a-service, multi-host shards
merging into one store).  POSIX ``flock`` is the coordination
primitive: it is advisory (readers that do not opt in are unaffected),
it is released automatically by the kernel when the holder dies (no
stale lock files to clean up), and shared/exclusive modes map exactly
onto load vs append/rewrite.

:class:`FileLock` wraps it with the policies the callers need:

* **Bounded waits.**  Acquisition polls with exponential backoff up to
  a deadline and raises :class:`LockTimeout` instead of blocking
  forever — a wedged writer must never wedge every other campaign.
* **Stale-holder diagnostics.**  The exclusive holder records its pid
  and acquisition time in the lock file; a timed-out waiter reads it
  back and reports whether that process is even alive.  (With
  ``flock`` a dead holder's lock is already gone, so "held by a dead
  pid" indicates an inherited descriptor — worth naming in the error.)
* **Graceful absence.**  On platforms without ``fcntl``, or
  filesystems that refuse ``flock`` (some network mounts), locking
  silently degrades to a no-op: single-writer behaviour is unchanged
  and multi-writer coordination is merely advisory anyway.
"""

from __future__ import annotations

import errno
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

try:  # pragma: no cover - absence exercised only on non-POSIX hosts
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = ["DEFAULT_LOCK_TIMEOUT", "FileLock", "LockTimeout", "locking_supported"]

#: default bound on how long an acquisition may wait, in seconds.
DEFAULT_LOCK_TIMEOUT = 30.0

#: errno values flock raises while the lock is merely *held elsewhere*
#: (everything else means the filesystem cannot lock at all).
_WOULD_BLOCK = (errno.EACCES, errno.EAGAIN)


def locking_supported() -> bool:
    """Whether this platform can take advisory locks at all."""
    return fcntl is not None


class LockTimeout(TimeoutError):
    """An advisory lock could not be acquired within its wait bound."""


class FileLock:
    """One advisory ``flock`` on one path, shared or exclusive.

    Locks are never held across public API calls of the owning object
    — acquire, do the file work, release — so a single lock path per
    resource cannot deadlock with itself and lock *ordering* questions
    only arise between distinct resources (see docs/architecture.md
    §5.6: the store lock and the trace-cache generation lock are never
    held simultaneously).
    """

    def __init__(
        self, path: Union[str, Path], timeout: Optional[float] = None
    ) -> None:
        self.path = Path(path)
        self.timeout = DEFAULT_LOCK_TIMEOUT if timeout is None else float(timeout)
        self._fd: Optional[int] = None
        #: False once the filesystem refused to lock (no-op from then on).
        self.supported = locking_supported()

    # -- core acquire/release ---------------------------------------------

    def acquire(
        self, exclusive: bool = True, timeout: Optional[float] = None
    ) -> float:
        """Take the lock; returns seconds spent waiting.

        Raises :class:`LockTimeout` when the bound elapses.  On
        filesystems that cannot lock, returns immediately (0.0) and
        flips :attr:`supported` off.
        """
        if not self.supported:
            return 0.0
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is already held by this object")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            self.supported = False
            return 0.0
        flags = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
        bound = self.timeout if timeout is None else float(timeout)
        started = time.monotonic()
        deadline = started + bound
        delay = 0.002
        while True:
            try:
                fcntl.flock(fd, flags | fcntl.LOCK_NB)
                break
            except OSError as exc:
                if exc.errno not in _WOULD_BLOCK:
                    # EOPNOTSUPP/ENOLCK and friends: this filesystem
                    # cannot lock; proceed unlocked rather than dying.
                    os.close(fd)
                    self.supported = False
                    return 0.0
                if time.monotonic() >= deadline:
                    holder = self._describe_holder(fd)
                    os.close(fd)
                    raise LockTimeout(
                        f"could not acquire {'exclusive' if exclusive else 'shared'} "
                        f"lock on {self.path} within {bound:.3g}s{holder}"
                    ) from exc
                time.sleep(delay)
                delay = min(delay * 2, 0.05)
        self._fd = fd
        if exclusive:
            self._write_holder(fd)
        return time.monotonic() - started

    def release(self) -> None:
        """Drop the lock (no-op if not held)."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        except OSError:  # pragma: no cover - unlock cannot usefully fail
            pass
        finally:
            os.close(fd)

    # -- context-manager forms --------------------------------------------

    @contextmanager
    def exclusive(self, timeout: Optional[float] = None) -> Iterator[float]:
        """``with lock.exclusive() as waited:`` — yields the wait time."""
        waited = self.acquire(exclusive=True, timeout=timeout)
        try:
            yield waited
        finally:
            self.release()

    @contextmanager
    def shared(self, timeout: Optional[float] = None) -> Iterator[float]:
        """``with lock.shared() as waited:`` — yields the wait time."""
        waited = self.acquire(exclusive=False, timeout=timeout)
        try:
            yield waited
        finally:
            self.release()

    # -- stale-holder diagnostics -----------------------------------------

    def _write_holder(self, fd: int) -> None:
        """Record who holds the exclusive lock (best-effort)."""
        try:
            payload = json.dumps({"pid": os.getpid(), "t": time.time()})
            os.ftruncate(fd, 0)
            os.pwrite(fd, payload.encode("utf-8"), 0)
        except OSError:  # diagnostics only; never fail an acquisition
            pass

    def _read_holder(self) -> Optional[Dict[str, Any]]:
        try:
            record = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def _describe_holder(self, fd: int) -> str:
        """A human-readable suffix naming the (possibly stale) holder."""
        holder = self._read_holder()
        if holder is None or "pid" not in holder:
            return ""
        pid = holder.get("pid")
        try:
            os.kill(int(pid), 0)
            alive = True
        except (OSError, TypeError, ValueError):
            alive = False
        age = ""
        try:
            age = f", held for {time.time() - float(holder['t']):.0f}s"
        except (KeyError, TypeError, ValueError):
            pass
        if alive:
            return f" (held by live pid {pid}{age})"
        return (
            f" (last exclusive holder pid {pid} is gone{age}; a dead holder's "
            f"flock auto-releases, so this lock is held via an inherited "
            f"descriptor or another live process)"
        )
