"""Dead-block prediction.

Prefetching into L1 is only safe when the line being displaced is
already dead (Section 5.2.2 of the paper): evicting a live line trades
one miss for another.  The paper's hybrid prefetcher therefore fills L1
"only after the corresponding cache line is predicted dead", using the
timekeeping dead-block predictor of Hu, Kaxiras & Martonosi (ISCA'02).

:class:`repro.deadblock.timekeeping.TimekeepingDeadBlockPredictor`
implements that mechanism: a block's *live time* (fill to last access)
is highly repetitive across generations, so once a block has gone
unaccessed for longer than its historical live time, it is predicted
dead.
"""

from repro.deadblock.timekeeping import (
    DeadBlockConfig,
    TimekeepingDeadBlockPredictor,
)

__all__ = ["DeadBlockConfig", "TimekeepingDeadBlockPredictor"]
