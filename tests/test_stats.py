"""Tests for repro.util.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import RunningStat, geometric_mean, harmonic_mean, percent_change


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
    def test_at_most_arithmetic_mean(self, values):
        assert geometric_mean(values) <= sum(values) / len(values) + 1e-9


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
    def test_at_most_geometric_mean(self, values):
        assert harmonic_mean(values) <= geometric_mean(values) + 1e-9


class TestPercentChange:
    def test_improvement(self):
        assert percent_change(2.0, 2.28) == pytest.approx(14.0)

    def test_regression(self):
        assert percent_change(2.0, 1.0) == pytest.approx(-50.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            percent_change(0.0, 1.0)


class TestRunningStat:
    def test_empty(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.variance == 0.0

    def test_known_values(self):
        stat = RunningStat()
        stat.extend([2.0, 4.0, 6.0])
        assert stat.count == 3
        assert stat.mean == pytest.approx(4.0)
        assert stat.variance == pytest.approx(8.0 / 3.0)
        assert stat.minimum == 2.0
        assert stat.maximum == 6.0

    def test_merge_matches_combined(self):
        left = RunningStat()
        right = RunningStat()
        combined = RunningStat()
        for value in [1.0, 5.0, 2.5]:
            left.add(value)
            combined.add(value)
        for value in [7.0, -3.0]:
            right.add(value)
            combined.add(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_empty_sides(self):
        stat = RunningStat()
        stat.add(3.0)
        empty = RunningStat()
        stat.merge(empty)
        assert stat.count == 1
        empty2 = RunningStat()
        empty2.merge(stat)
        assert empty2.mean == pytest.approx(3.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_matches_batch_formulas(self, values):
        stat = RunningStat()
        stat.extend(values)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert stat.mean == pytest.approx(mean, abs=1e-6)
        assert stat.variance == pytest.approx(variance, rel=1e-6, abs=1e-6)
        assert stat.stddev == pytest.approx(math.sqrt(variance), rel=1e-6, abs=1e-6)
