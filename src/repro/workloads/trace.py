"""The trace format consumed by the CPU timing model.

A trace is the memory-instruction skeleton of a program: one record per
load/store, with the non-memory instructions between them represented
by a per-record *gap* count.  This is the standard reduction for
trace-driven timing simulation — non-memory instructions only matter
for how fast the frontend can put memory operations into the window,
which the gap (together with the workload's ILP parameter) captures.

Fields (parallel numpy arrays, one element per memory access):

``addrs``
    byte addresses (uint64);
``pcs``
    the PC of the memory instruction (uint64) — synthetic but stable
    per static access site, which is what PC-correlating hardware
    (DBCP, stride RPT) keys on;
``is_load``
    True for loads, False for stores;
``gaps``
    non-memory instructions *preceding* this access;
``deps``
    0 when the access address depends on no in-flight load; ``d > 0``
    when it depends on the data of the ``d``-th previous access
    (pointer chasing sets ``d = 1``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["Scale", "Trace"]


class Scale(enum.Enum):
    """Trace-length presets.

    The paper simulates 2 billion instructions per benchmark; pure
    Python cannot, so experiments pick a scale.  ``QUICK`` is for the
    test suite, ``STANDARD`` for the committed benchmark harness, and
    ``FULL`` for the recorded EXPERIMENTS.md runs.
    """

    QUICK = 20_000
    STANDARD = 120_000
    FULL = 300_000

    @property
    def accesses(self) -> int:
        """Approximate number of memory accesses at this scale."""
        return self.value


@dataclass
class Trace:
    """An immutable memory-access trace plus its ILP parameter."""

    name: str
    addrs: np.ndarray
    pcs: np.ndarray
    is_load: np.ndarray
    gaps: np.ndarray
    deps: np.ndarray
    #: how many non-memory instructions per cycle the workload's own
    #: dependence structure allows (bounds dispatch below issue width).
    base_ipc: float = 4.0

    def __post_init__(self) -> None:
        n = len(self.addrs)
        for field_name in ("pcs", "is_load", "gaps", "deps"):
            arr = getattr(self, field_name)
            if len(arr) != n:
                raise ValueError(
                    f"trace field {field_name} has length {len(arr)}, expected {n}"
                )
        if self.base_ipc <= 0:
            raise ValueError(f"base_ipc must be positive, got {self.base_ipc}")
        if n and bool((self.deps > np.arange(n)).any()):
            raise ValueError("dependence distance points before the start of the trace")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def instruction_count(self) -> int:
        """Total instructions represented (memory ops + gaps)."""
        return len(self.addrs) + int(self.gaps.sum())

    def slice(self, count: int) -> "Trace":
        """Return a prefix of the trace with at most ``count`` accesses."""
        if count >= len(self):
            return self
        deps = self.deps[:count].copy()
        # A dependence pointing before the cut would reference a record
        # that no longer exists; clamp it to "independent".
        positions = np.arange(count)
        deps[deps > positions] = 0
        return Trace(
            name=self.name,
            addrs=self.addrs[:count],
            pcs=self.pcs[:count],
            is_load=self.is_load[:count],
            gaps=self.gaps[:count],
            deps=deps,
            base_ipc=self.base_ipc,
        )

    def describe(self) -> str:
        """One-line summary for logs."""
        return (
            f"{self.name}: {len(self):,} accesses, "
            f"{self.instruction_count:,} instructions, "
            f"{int(self.is_load.sum()):,} loads"
        )
