"""Plain-text rendering of experiment output.

Every experiment module prints its results as an aligned ASCII table
(the paper's tables) and, where the paper uses a bar chart, an ASCII
bar chart so the series shape is visible directly in terminal output
and in the committed EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["format_barchart", "format_table"]


def _cell(value: object) -> str:
    """Render one cell: floats get 4 significant digits, rest via str."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        magnitude = abs(value)
        if magnitude != 0 and (magnitude >= 1e6 or magnitude < 1e-3):
            return f"{value:.3e}"
        return f"{value:,.4g}" if magnitude >= 1000 else f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Column widths adapt to content; numeric cells are right-aligned and
    text cells left-aligned, matching conventional table typography.
    """
    rendered = [[_cell(value) for value in row] for row in rows]
    numeric = [
        all(isinstance(row[col], (int, float)) for row in rows if col < len(row))
        for col in range(len(headers))
    ]
    widths = [len(header) for header in headers]
    for row in rendered:
        for col, text in enumerate(row):
            if col < len(widths):
                widths[col] = max(widths[col], len(text))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for col, text in enumerate(cells):
            width = widths[col] if col < len(widths) else len(text)
            parts.append(text.rjust(width) if numeric[col] and rows else text.ljust(width))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_barchart(
    series: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart of ``label -> value``.

    Bars are scaled to the maximum absolute value; negative values
    render with a ``-`` bar so regressions (e.g. a prefetcher hurting a
    benchmark, as in the paper's Figure 11) stand out.
    """
    if width <= 0:
        raise ValueError(f"chart width must be positive, got {width}")
    lines = []
    if title:
        lines.append(title)
    if not series:
        lines.append("(no data)")
        return "\n".join(lines)
    label_width = max(len(label) for label in series)
    peak = max(abs(value) for value in series.values())
    scale = width / peak if peak > 0 else 0.0
    for label, value in series.items():
        bar_len = int(round(abs(value) * scale))
        bar_char = "#" if value >= 0 else "-"
        bar = bar_char * bar_len
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)} {value:9.3f}{unit}")
    return "\n".join(lines)
