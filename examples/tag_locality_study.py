#!/usr/bin/env python3
"""Reproduce the paper's Section 3 miss-stream characterisation.

Walks a few contrasting benchmarks through the full analysis pipeline —
miss-stream capture, single-tag statistics (Figures 2-4), three-tag
sequence statistics (Figures 5-7), and the strided share (Figure 15) —
and prints the evidence chain behind TCP:

1. far fewer unique tags than unique addresses;
2. tags recur orders of magnitude more often than addresses;
3. per-set tag sequences are a tiny fraction of the random limit;
4. one sequence appears in many sets (so one PHT entry serves many
   address sequences).

Usage: ``python examples/tag_locality_study.py [scale]``
"""

import sys

from repro import Scale
from repro.analysis import capture_miss_stream, sequence_stats, tag_stats
from repro.core.strided import strided_fraction
from repro.util.tables import format_barchart, format_table

BENCHMARKS = ("art", "swim", "mcf", "crafty", "twolf", "fma3d")


def main() -> int:
    scale = Scale[(sys.argv[1] if len(sys.argv) > 1 else "quick").upper()]
    rows = []
    sharing = {}
    for name in BENCHMARKS:
        stream = capture_miss_stream(name, scale)
        tags = tag_stats(stream)
        sequences = sequence_stats(stream)
        strided = strided_fraction(stream.indices, stream.tags)
        sharing[name] = sequences.mean_sets_per_sequence
        rows.append(
            [
                name,
                len(stream),
                tags.unique_tags,
                tags.unique_blocks,
                tags.mean_tag_occurrences,
                tags.mean_block_occurrences,
                sequences.fraction_of_upper_limit * 100.0,
                sequences.mean_sets_per_sequence,
                strided * 100.0,
            ]
        )
    print(
        format_table(
            [
                "benchmark", "misses", "tags", "addresses",
                "occ/tag", "occ/addr", "seq % of limit", "sets/seq", "% strided",
            ],
            rows,
            title=f"Tag locality study (scale={scale.name.lower()})",
        )
    )
    print()
    print(
        format_barchart(
            sharing,
            title="Mean cache sets sharing each 3-tag sequence (Figure 7 top)",
            width=40,
        )
    )
    print(
        "\nEvery set a sequence appears in is one address sequence an\n"
        "address-correlating prefetcher would need a private entry for —\n"
        "the paper's storage argument in one number."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
