/* _native.c — the compiled scalar epilogue behind the `native` backend.
 *
 * This module compiles the flattened per-access miss path of
 * repro/backend/vector/engine.py (the "scalar epilogue") into a C
 * extension.  The design constraint is strict bit-identity with the
 * python reference loop, so the Engine object does NOT keep its own
 * copies of simulator state: it operates directly on the *live*
 * Python containers (the MSHR in-flight dict, the L2 per-set LRU
 * dicts, the THT history rows, the PHT sets, DRAM's completion list,
 * the poisoned/resident sets) through the CPython C API, and unboxes
 * only pure scalars (bus clocks, counters) plus flat numpy planes
 * (trace columns, L1D state, completion/commit timelines) shared with
 * the Python driver via the buffer protocol.  All floating-point
 * arithmetic is plain IEEE double in source order — the same ops, in
 * the same order, that the CPython interpreter performs — so cycle
 * counts match the reference bit for bit.
 *
 * The Python driver (repro/backend/native/engine.py) keeps the numpy
 * batch path and calls Engine.step(i, limit, ...) for every scalar
 * stretch; probes, warmup accounting, and span boundaries stay in
 * Python.  Three callbacks reach back for the paths that must run
 * interpreted: instruction-fetch misses, generic (non-TCP) prefetcher
 * training, and L1 eviction events.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>
#include <time.h>

typedef struct {
    double t;
    long long b;
} HeapItem;

typedef struct {
    PyObject_HEAD

    /* ---- read-only trace planes (borrowed buffers) ---- */
    Py_buffer idx_b, instr_b, blocks_b, tags_b, deps_b, load_b, incs_b,
        l2i_b, l2t_b, fb_b;
    const long long *idx, *instr, *blocks, *tags, *deps, *l2i, *l2t, *fb;
    const unsigned char *load;
    const double *incs;
    int have_fb;

    /* ---- read-write planes ---- */
    Py_buffer comp_b, cmt_b;
    double *comp_arr, *cmt_arr;
    Py_ssize_t n;
    Py_buffer l1tag_b, l1la_b, l1ft_b, l1dirty_b;
    long long *l1tag;
    double *l1la, *l1ft;
    unsigned char *l1dirty;
    Py_buffer thtsum_b;
    long long *thtsum;
    int have_thtsum;

    /* ---- live Python containers / objects (owned refs) ---- */
    PyObject *msh_inf;    /* dict: block -> completion */
    PyObject *mem_comp;   /* list[float] (mutated in place) */
    PyObject *pf_inflight;/* list[float] (mutated in place) */
    PyObject *l2_entries; /* list[dict] */
    PyObject *l2_sets;    /* list[LRUSet] */
    PyObject *pht_sets;   /* list[LRUSet] or None */
    PyObject *tht_hist;   /* list[tuple[int, ...]] or None */
    PyObject *poisoned;   /* set[int] */
    PyObject *resident;   /* set[int] */
    PyObject *cacheline;  /* CacheLine class */
    PyObject *l1i_lookup; /* bound method */
    PyObject *ab, *db, *mab, *mdb; /* buses */
    PyObject *mshr, *memory, *hierarchy;
    PyObject *ifetch_cb, *observe_cb, *evict_cb;

    /* ---- machine scalars ---- */
    long long window;
    Py_ssize_t lsq;
    double ls_s, inv_cr;
    long long l1_lat, l2_lat, l1_beats, mem_beats, mem_lat;
    Py_ssize_t mem_maxc, msh_entries, l2_ways, pf_max, pht_ways, pht_targets;
    long long l2_shift, l2_imask, l1_ib, l1i_mask, seq_mask, miss_mask;
    int l2_ibits, l1i_bits, n_bits, tht_ib;
    long long pf_delay;
    double pf_busy_thr;
    int lru_pf, ideal_l2, model_icache, tcp_fast, has_prefetcher, needs_evict;

    /* ---- mirrored component scalars (synced at boundaries) ---- */
    double a_nf, a_by, a_qc;
    long long a_tr;
    double d_nf, d_by, d_qc;
    long long d_tr;
    double ma_nf, ma_by, ma_qc;
    long long ma_tr;
    double md_nf, md_by, md_qc;
    long long md_tr;
    long long msh_fs, msh_mg, msh_pk;
    long long mem_acc;

    /* ---- lazy-deletion MSHR heap (C-owned; rebuilt on sync_in) ---- */
    HeapItem *heap;
    Py_ssize_t heap_len, heap_cap;

    /* ---- stat deltas (drained by take_stats) ---- */
    long long dc, ldc, stc, hc, ifc;
    long long l1m, l2a, l2h, l2m, pfo, useful, mgd, wb1, wb2;
    long long pfr, pfi, pfred, pfdq, pfdb, pfev;
    long long pfl, pfu, pfp, tl, tp, pu, pl, ph;
    long long sc;
    Py_ssize_t poison_peak;
    long long epi_ns;
} EngineObject;

/* interned attribute names (module-lifetime) */
static PyObject *s_entries, *s_last_access, *s_prefetched, *s_fill_time,
    *s_dirty, *s_next_free, *s_busy_cycles, *s_queued_cycles, *s_transfers,
    *s_earliest, *s_full_stalls, *s_merges, *s_peak_occupancy,
    *s_completions_attr, *s_accesses, *s_pf_inflight_attr;

/* ================= small helpers ================= */

static int
heap_reserve(EngineObject *e, Py_ssize_t need)
{
    if (need <= e->heap_cap)
        return 0;
    Py_ssize_t cap = e->heap_cap ? e->heap_cap : 64;
    while (cap < need)
        cap *= 2;
    HeapItem *p = PyMem_Realloc(e->heap, cap * sizeof(HeapItem));
    if (p == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    e->heap = p;
    e->heap_cap = cap;
    return 0;
}

static int
heap_push(EngineObject *e, double t, long long b)
{
    if (heap_reserve(e, e->heap_len + 1) < 0)
        return -1;
    Py_ssize_t pos = e->heap_len++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (e->heap[parent].t <= t)
            break;
        e->heap[pos] = e->heap[parent];
        pos = parent;
    }
    e->heap[pos].t = t;
    e->heap[pos].b = b;
    return 0;
}

static void
heap_popmin(EngineObject *e, HeapItem *out)
{
    *out = e->heap[0];
    Py_ssize_t len = --e->heap_len;
    if (len == 0)
        return;
    HeapItem last = e->heap[len];
    Py_ssize_t pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= len)
            break;
        if (child + 1 < len && e->heap[child + 1].t < e->heap[child].t)
            child += 1;
        if (e->heap[child].t >= last.t)
            break;
        e->heap[pos] = e->heap[child];
        pos = child;
    }
    e->heap[pos] = last;
}

/* first key of a dict (borrowed ref), NULL if empty */
static PyObject *
dict_first_key(PyObject *d)
{
    PyObject *k, *v;
    Py_ssize_t pos = 0;
    if (PyDict_Next(d, &pos, &k, &v))
        return k;
    return NULL;
}

static int
attr_true(PyObject *obj, PyObject *name)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    int res = PyObject_IsTrue(v);
    Py_DECREF(v);
    return res;
}

static double
attr_double(PyObject *obj, PyObject *name, int *err)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL) {
        *err = 1;
        return 0.0;
    }
    double d = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (d == -1.0 && PyErr_Occurred()) {
        *err = 1;
        return 0.0;
    }
    return d;
}

static long long
attr_ll(PyObject *obj, PyObject *name, int *err)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL) {
        *err = 1;
        return 0;
    }
    long long r = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (r == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    return r;
}

static int
set_attr_double(PyObject *obj, PyObject *name, double val)
{
    PyObject *v = PyFloat_FromDouble(val);
    if (v == NULL)
        return -1;
    int r = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return r;
}

static int
set_attr_ll(PyObject *obj, PyObject *name, long long val)
{
    PyObject *v = PyLong_FromLongLong(val);
    if (v == NULL)
        return -1;
    int r = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return r;
}

static int
list_append_double(PyObject *list, double val)
{
    PyObject *v = PyFloat_FromDouble(val);
    if (v == NULL)
        return -1;
    int r = PyList_Append(list, v);
    Py_DECREF(v);
    return r;
}

/* `msh_inf.get(b) == t` with the reference's equality semantics */
static int
mshr_match(EngineObject *e, long long b, double t)
{
    PyObject *bo = PyLong_FromLongLong(b);
    if (bo == NULL)
        return -1;
    PyObject *val = PyDict_GetItemWithError(e->msh_inf, bo);
    Py_DECREF(bo);
    if (val == NULL) {
        if (PyErr_Occurred())
            PyErr_Clear();
        return 0;
    }
    double dv = PyFloat_AsDouble(val);
    if (dv == -1.0 && PyErr_Occurred()) {
        PyErr_Clear();
        return 0;
    }
    return dv == t;
}

/* `if msh_inf.get(b) == t: del msh_inf[b]` */
static int
mshr_del_if_match(EngineObject *e, long long b, double t)
{
    PyObject *bo = PyLong_FromLongLong(b);
    if (bo == NULL)
        return -1;
    PyObject *val = PyDict_GetItemWithError(e->msh_inf, bo);
    if (val != NULL) {
        double dv = PyFloat_AsDouble(val);
        if (dv == -1.0 && PyErr_Occurred())
            PyErr_Clear();
        else if (dv == t) {
            if (PyDict_DelItem(e->msh_inf, bo) < 0) {
                Py_DECREF(bo);
                return -1;
            }
        }
    }
    else if (PyErr_Occurred()) {
        Py_DECREF(bo);
        return -1;
    }
    Py_DECREF(bo);
    return 0;
}

/* delete the sorted prefix of mem_comp with value <= bound (the
 * reference's `[x for x in mem_comp if x > bound]` after a sort) */
static int
memcomp_prefix_filter(EngineObject *e, double bound)
{
    Py_ssize_t len = PyList_GET_SIZE(e->mem_comp);
    Py_ssize_t k = 0;
    while (k < len) {
        double v = PyFloat_AsDouble(PyList_GET_ITEM(e->mem_comp, k));
        if (v == -1.0 && PyErr_Occurred())
            return -1;
        if (v > bound)
            break;
        k++;
    }
    if (k == 0)
        return 0;
    return PyList_SetSlice(e->mem_comp, 0, k, NULL);
}

/* ================= boundary sync ================= */

static int
sync_out_internal(EngineObject *e)
{
    if (set_attr_double(e->ab, s_next_free, e->a_nf) < 0 ||
        set_attr_double(e->ab, s_busy_cycles, e->a_by) < 0 ||
        set_attr_double(e->ab, s_queued_cycles, e->a_qc) < 0 ||
        set_attr_ll(e->ab, s_transfers, e->a_tr) < 0)
        return -1;
    if (set_attr_double(e->db, s_next_free, e->d_nf) < 0 ||
        set_attr_double(e->db, s_busy_cycles, e->d_by) < 0 ||
        set_attr_double(e->db, s_queued_cycles, e->d_qc) < 0 ||
        set_attr_ll(e->db, s_transfers, e->d_tr) < 0)
        return -1;
    if (set_attr_double(e->mab, s_next_free, e->ma_nf) < 0 ||
        set_attr_double(e->mab, s_busy_cycles, e->ma_by) < 0 ||
        set_attr_double(e->mab, s_queued_cycles, e->ma_qc) < 0 ||
        set_attr_ll(e->mab, s_transfers, e->ma_tr) < 0)
        return -1;
    if (set_attr_double(e->mdb, s_next_free, e->md_nf) < 0 ||
        set_attr_double(e->mdb, s_busy_cycles, e->md_by) < 0 ||
        set_attr_double(e->mdb, s_queued_cycles, e->md_qc) < 0 ||
        set_attr_ll(e->mdb, s_transfers, e->md_tr) < 0)
        return -1;
    /* mshr._earliest = min(inflight.values(), default=inf) */
    double earliest = Py_HUGE_VAL;
    PyObject *k, *v;
    Py_ssize_t pos = 0;
    while (PyDict_Next(e->msh_inf, &pos, &k, &v)) {
        double dv = PyFloat_AsDouble(v);
        if (dv == -1.0 && PyErr_Occurred())
            return -1;
        if (dv < earliest)
            earliest = dv;
    }
    if (set_attr_double(e->mshr, s_earliest, earliest) < 0 ||
        set_attr_ll(e->mshr, s_full_stalls, e->msh_fs) < 0 ||
        set_attr_ll(e->mshr, s_merges, e->msh_mg) < 0 ||
        set_attr_ll(e->mshr, s_peak_occupancy, e->msh_pk) < 0)
        return -1;
    if (PyObject_SetAttr(e->memory, s_completions_attr, e->mem_comp) < 0 ||
        set_attr_ll(e->memory, s_accesses, e->mem_acc) < 0)
        return -1;
    if (PyObject_SetAttr(e->hierarchy, s_pf_inflight_attr, e->pf_inflight) < 0)
        return -1;
    return 0;
}

static int
sync_in_internal(EngineObject *e)
{
    int err = 0;
    e->a_nf = attr_double(e->ab, s_next_free, &err);
    e->a_by = attr_double(e->ab, s_busy_cycles, &err);
    e->a_qc = attr_double(e->ab, s_queued_cycles, &err);
    e->a_tr = attr_ll(e->ab, s_transfers, &err);
    e->d_nf = attr_double(e->db, s_next_free, &err);
    e->d_by = attr_double(e->db, s_busy_cycles, &err);
    e->d_qc = attr_double(e->db, s_queued_cycles, &err);
    e->d_tr = attr_ll(e->db, s_transfers, &err);
    e->ma_nf = attr_double(e->mab, s_next_free, &err);
    e->ma_by = attr_double(e->mab, s_busy_cycles, &err);
    e->ma_qc = attr_double(e->mab, s_queued_cycles, &err);
    e->ma_tr = attr_ll(e->mab, s_transfers, &err);
    e->md_nf = attr_double(e->mdb, s_next_free, &err);
    e->md_by = attr_double(e->mdb, s_busy_cycles, &err);
    e->md_qc = attr_double(e->mdb, s_queued_cycles, &err);
    e->md_tr = attr_ll(e->mdb, s_transfers, &err);
    e->msh_fs = attr_ll(e->mshr, s_full_stalls, &err);
    e->msh_mg = attr_ll(e->mshr, s_merges, &err);
    e->msh_pk = attr_ll(e->mshr, s_peak_occupancy, &err);
    e->mem_acc = attr_ll(e->memory, s_accesses, &err);
    if (err)
        return -1;
    /* The Python side rebinds these lists (MainMemory.fetch filters
     * by rebuilding); chase the current objects. */
    PyObject *mc = PyObject_GetAttr(e->memory, s_completions_attr);
    if (mc == NULL)
        return -1;
    Py_SETREF(e->mem_comp, mc);
    PyObject *pfq = PyObject_GetAttr(e->hierarchy, s_pf_inflight_attr);
    if (pfq == NULL)
        return -1;
    Py_SETREF(e->pf_inflight, pfq);
    /* rebuild the lazy-deletion heap from the live dict */
    Py_ssize_t sz = PyDict_GET_SIZE(e->msh_inf);
    if (heap_reserve(e, sz ? sz : 1) < 0)
        return -1;
    e->heap_len = 0;
    PyObject *k, *v;
    Py_ssize_t pos = 0;
    while (PyDict_Next(e->msh_inf, &pos, &k, &v)) {
        double dv = PyFloat_AsDouble(v);
        if (dv == -1.0 && PyErr_Occurred())
            return -1;
        long long b = PyLong_AsLongLong(k);
        if (b == -1 && PyErr_Occurred())
            return -1;
        if (heap_push(e, dv, b) < 0)
            return -1;
    }
    return 0;
}

/* ================= prefetch issue ================= */

static int
issue_pf_c(EngineObject *e, long long pb, double t)
{
    e->pfr++;
    long long l2b = pb >> e->l2_shift;
    long long i2 = l2b & e->l2_imask;
    long long t2 = l2b >> e->l2_ibits;
    PyObject *entries = PyList_GET_ITEM(e->l2_entries, i2); /* borrowed */
    PyObject *t2o = PyLong_FromLongLong(t2);
    if (t2o == NULL)
        return -1;
    PyObject *line = PyDict_GetItemWithError(entries, t2o);
    if (line == NULL && PyErr_Occurred()) {
        Py_DECREF(t2o);
        return -1;
    }
    if (line != NULL) {
        e->pfred++;
        Py_DECREF(t2o);
        return 0;
    }
    /* order-preserving expiry filter, in place (identity-stable) */
    Py_ssize_t ln = PyList_GET_SIZE(e->pf_inflight);
    if (ln) {
        PyObject *keep = PyList_New(0);
        if (keep == NULL) {
            Py_DECREF(t2o);
            return -1;
        }
        for (Py_ssize_t q = 0; q < ln; q++) {
            PyObject *x = PyList_GET_ITEM(e->pf_inflight, q);
            double xv = PyFloat_AsDouble(x);
            if (xv == -1.0 && PyErr_Occurred()) {
                Py_DECREF(keep);
                Py_DECREF(t2o);
                return -1;
            }
            if (xv > t && PyList_Append(keep, x) < 0) {
                Py_DECREF(keep);
                Py_DECREF(t2o);
                return -1;
            }
        }
        int r = PyList_SetSlice(e->pf_inflight, 0, ln, keep);
        Py_DECREF(keep);
        if (r < 0) {
            Py_DECREF(t2o);
            return -1;
        }
    }
    if (PyList_GET_SIZE(e->pf_inflight) >= e->pf_max) {
        e->pfdq++;
        Py_DECREF(t2o);
        return 0;
    }
    if (e->md_nf - ((t + 1.0) + (double)e->mem_lat) > e->pf_busy_thr) {
        e->pfdb++;
        Py_DECREF(t2o);
        return 0;
    }
    /* MainMemory.fetch, inlined */
    double tq = t + (double)e->l2_lat;
    double st = tq > e->ma_nf ? tq : e->ma_nf;
    e->ma_nf = st + 1.0;
    e->ma_by += 1.0;
    e->ma_qc += st - tq;
    e->ma_tr += 1;
    double start = st + 1.0;
    if (PyList_GET_SIZE(e->mem_comp) >= e->mem_maxc) {
        if (PyList_Sort(e->mem_comp) < 0) {
            Py_DECREF(t2o);
            return -1;
        }
        double first = PyFloat_AsDouble(PyList_GET_ITEM(e->mem_comp, 0));
        if (first == -1.0 && PyErr_Occurred()) {
            Py_DECREF(t2o);
            return -1;
        }
        if (first > start)
            start = first;
        if (memcomp_prefix_filter(e, start) < 0) {
            Py_DECREF(t2o);
            return -1;
        }
    }
    double ready = start + (double)e->mem_lat;
    st = ready > e->md_nf ? ready : e->md_nf;
    e->md_nf = st + (double)e->mem_beats;
    e->md_by += (double)e->mem_beats;
    e->md_qc += st - ready;
    e->md_tr += 1;
    double done = st + (double)e->mem_beats;
    if (list_append_double(e->mem_comp, done) < 0) {
        Py_DECREF(t2o);
        return -1;
    }
    e->mem_acc++;
    if (list_append_double(e->pf_inflight, done) < 0) {
        Py_DECREF(t2o);
        return -1;
    }
    e->pfi++;
    /* _fill_l2, prefetch insert */
    PyObject *newline =
        PyObject_CallFunction(e->cacheline, "Ld", t2, done);
    if (newline == NULL) {
        Py_DECREF(t2o);
        return -1;
    }
    if (PyObject_SetAttr(newline, s_prefetched, Py_True) < 0) {
        Py_DECREF(newline);
        Py_DECREF(t2o);
        return -1;
    }
    PyObject *victim = NULL;
    if (PyDict_GET_SIZE(entries) >= e->l2_ways) {
        PyObject *fk = dict_first_key(entries);
        Py_INCREF(fk);
        victim = PyDict_GetItem(entries, fk);
        Py_XINCREF(victim);
        if (PyDict_DelItem(entries, fk) < 0) {
            Py_DECREF(fk);
            Py_XDECREF(victim);
            Py_DECREF(newline);
            Py_DECREF(t2o);
            return -1;
        }
        Py_DECREF(fk);
    }
    if (e->lru_pf) {
        /* LRUSet.put_lru rebinds: {t2: line, **entries} */
        PyObject *nd = PyDict_New();
        if (nd == NULL || PyDict_SetItem(nd, t2o, newline) < 0 ||
            PyDict_Merge(nd, entries, 1) < 0) {
            Py_XDECREF(nd);
            Py_XDECREF(victim);
            Py_DECREF(newline);
            Py_DECREF(t2o);
            return -1;
        }
        PyObject *lru = PyList_GET_ITEM(e->l2_sets, i2);
        if (PyObject_SetAttr(lru, s_entries, nd) < 0) {
            Py_DECREF(nd);
            Py_XDECREF(victim);
            Py_DECREF(newline);
            Py_DECREF(t2o);
            return -1;
        }
        PyList_SetItem(e->l2_entries, i2, nd); /* steals nd */
    }
    else {
        if (PyDict_SetItem(entries, t2o, newline) < 0) {
            Py_XDECREF(victim);
            Py_DECREF(newline);
            Py_DECREF(t2o);
            return -1;
        }
    }
    Py_DECREF(newline);
    Py_DECREF(t2o);
    if (victim != NULL) {
        int vpf = attr_true(victim, s_prefetched);
        if (vpf < 0) {
            Py_DECREF(victim);
            return -1;
        }
        if (vpf)
            e->pfev++;
        int vd = attr_true(victim, s_dirty);
        if (vd < 0) {
            Py_DECREF(victim);
            return -1;
        }
        if (vd) {
            e->wb2++;
            st = done > e->md_nf ? done : e->md_nf;
            e->md_nf = st + (double)e->mem_beats;
            e->md_by += (double)e->mem_beats;
            e->md_qc += st - done;
            e->md_tr += 1;
        }
        Py_DECREF(victim);
    }
    return 0;
}

static int tcp_train(EngineObject *e, long long s, long long tag,
                     long long block, double v);

/* ================= the scalar epilogue ================= */

static PyObject *
Engine_step(EngineObject *e, PyObject *args)
{
    Py_ssize_t i, limit, P;
    double li, lc, nd;
    long long last_fb;
    if (!PyArg_ParseTuple(args, "nndddnL", &i, &limit, &li, &lc, &nd, &P,
                          &last_fb))
        return NULL;
    if (i < 0 || limit > e->n || i > limit) {
        PyErr_SetString(PyExc_ValueError, "step range out of bounds");
        return NULL;
    }
    struct timespec ts0, ts1;
    clock_gettime(CLOCK_MONOTONIC, &ts0);

    for (; i < limit; i++) {
        long long s = e->idx[i];
        nd += e->incs[i];
        long long floor_ = e->instr[i] - e->window;
        while (P < i) {
            if (e->instr[P] > floor_)
                break;
            double c = e->cmt_arr[P];
            if (c > nd)
                nd = c;
            P++;
        }
        if (i >= e->lsq) {
            double c = e->cmt_arr[i - e->lsq];
            if (c > nd)
                nd = c;
        }
        if (e->model_icache) {
            long long fb = e->fb[i];
            if (fb != last_fb) {
                last_fb = fb;
                PyObject *fbo = PyLong_FromLongLong(fb);
                if (fbo == NULL)
                    goto fail;
                int res = PySet_Contains(e->resident, fbo);
                Py_DECREF(fbo);
                if (res < 0)
                    goto fail;
                if (res) {
                    e->ifc++;
                    PyObject *r = PyObject_CallFunction(
                        e->l1i_lookup, "LLOd", fb & e->l1i_mask,
                        fb >> e->l1i_bits, Py_False, nd);
                    if (r == NULL)
                        goto fail;
                    Py_DECREF(r);
                }
                else {
                    /* real instruction fetch: run interpreted with
                     * component state synced around the call */
                    if (sync_out_internal(e) < 0)
                        goto fail;
                    PyObject *r = PyObject_CallFunction(e->ifetch_cb, "dn",
                                                        nd, i);
                    if (r == NULL)
                        goto fail;
                    double pen = PyFloat_AsDouble(r);
                    Py_DECREF(r);
                    if (pen == -1.0 && PyErr_Occurred())
                        goto fail;
                    if (sync_in_internal(e) < 0)
                        goto fail;
                    if (pen > 0.0)
                        nd += pen;
                }
            }
        }
        double v = li + e->ls_s;
        if (nd > v)
            v = nd;
        long long dep = e->deps[i];
        if (dep) {
            Py_ssize_t j = i - (Py_ssize_t)dep;
            if (j < 0)
                j += e->n; /* python negative indexing */
            double c = e->comp_arr[j];
            if (c > v)
                v = c;
        }
        li = v;
        int load = e->load[i];
        long long tag = e->tags[i];
        double comp;
        if (e->l1tag[s] == tag) {
            /* inlined direct-mapped hit */
            if (load) {
                comp = v + (double)e->l1_lat;
                e->ldc++;
            }
            else {
                comp = v + 1.0;
                e->l1dirty[s] = 1;
                e->stc++;
            }
            e->l1la[s] = v;
            e->dc++;
            e->hc++;
            if (PySet_GET_SIZE(e->poisoned)) {
                PyObject *so = PyLong_FromLongLong(s);
                if (so == NULL)
                    goto fail;
                int r = PySet_Discard(e->poisoned, so);
                Py_DECREF(so);
                if (r < 0)
                    goto fail;
            }
        }
        else {
            /* ---- flattened demand miss ---- */
            e->dc++;
            if (load)
                e->ldc++;
            else
                e->stc++;
            e->l1m++;
            long long block = e->blocks[i];
            PyObject *blocko = PyLong_FromLongLong(block);
            if (blocko == NULL)
                goto fail;
            PyObject *merged = PyDict_GetItemWithError(e->msh_inf, blocko);
            if (merged == NULL && PyErr_Occurred()) {
                Py_DECREF(blocko);
                goto fail;
            }
            double mval = 0.0;
            if (merged != NULL) {
                mval = PyFloat_AsDouble(merged);
                if (mval == -1.0 && PyErr_Occurred()) {
                    Py_DECREF(blocko);
                    goto fail;
                }
            }
            if (merged != NULL && mval > v) {
                /* MSHR merge */
                e->msh_mg++;
                e->mgd++;
                comp = mval;
                PyObject *so = PyLong_FromLongLong(s);
                if (so == NULL) {
                    Py_DECREF(blocko);
                    goto fail;
                }
                int r = PySet_Add(e->poisoned, so);
                Py_DECREF(so);
                if (r < 0) {
                    Py_DECREF(blocko);
                    goto fail;
                }
                Py_ssize_t lp = PySet_GET_SIZE(e->poisoned);
                if (lp > e->poison_peak)
                    e->poison_peak = lp;
                Py_DECREF(blocko);
            }
            else {
                /* MSHR acquire (reap only when full) */
                double start;
                if (PyDict_GET_SIZE(e->msh_inf) < e->msh_entries)
                    start = v;
                else {
                    while (e->heap_len && e->heap[0].t <= v) {
                        HeapItem it;
                        heap_popmin(e, &it);
                        if (mshr_del_if_match(e, it.b, it.t) < 0) {
                            Py_DECREF(blocko);
                            goto fail;
                        }
                    }
                    if (PyDict_GET_SIZE(e->msh_inf) < e->msh_entries)
                        start = v;
                    else {
                        for (;;) {
                            if (e->heap_len == 0) {
                                PyErr_SetString(PyExc_RuntimeError,
                                                "MSHR heap drained while "
                                                "the file is full");
                                Py_DECREF(blocko);
                                goto fail;
                            }
                            HeapItem top = e->heap[0];
                            int m = mshr_match(e, top.b, top.t);
                            if (m < 0) {
                                Py_DECREF(blocko);
                                goto fail;
                            }
                            if (m) {
                                start = top.t;
                                break;
                            }
                            HeapItem dump;
                            heap_popmin(e, &dump);
                        }
                        e->msh_fs++;
                        while (e->heap_len && e->heap[0].t <= start) {
                            HeapItem it;
                            heap_popmin(e, &it);
                            if (mshr_del_if_match(e, it.b, it.t) < 0) {
                                Py_DECREF(blocko);
                                goto fail;
                            }
                        }
                    }
                }
                /* L1/L2 address channel: one command beat */
                double t_ = start + (double)e->l1_lat;
                double st_ = t_ > e->a_nf ? t_ : e->a_nf;
                e->a_nf = st_ + 1.0;
                e->a_by += 1.0;
                e->a_qc += st_ - t_;
                e->a_tr += 1;
                double arrival = st_ + 1.0;
                e->l2a++;
                long long i2 = e->l2i[i];
                long long t2 = e->l2t[i];
                PyObject *l2e = PyList_GET_ITEM(e->l2_entries, i2);
                PyObject *t2o = PyLong_FromLongLong(t2);
                if (t2o == NULL) {
                    Py_DECREF(blocko);
                    goto fail;
                }
                PyObject *l2_line = PyDict_GetItemWithError(l2e, t2o);
                if (l2_line == NULL && PyErr_Occurred()) {
                    Py_DECREF(t2o);
                    Py_DECREF(blocko);
                    goto fail;
                }
                double data_ready = 0.0;
                int fail_inner = 0;
                if (l2_line != NULL) {
                    Py_INCREF(l2_line);
                    /* LRU promote: del + reinsert */
                    if (PyDict_DelItem(l2e, t2o) < 0 ||
                        PyDict_SetItem(l2e, t2o, l2_line) < 0 ||
                        set_attr_double(l2_line, s_last_access, arrival) < 0)
                        fail_inner = 1;
                }
                if (!fail_inner && (l2_line != NULL || e->ideal_l2)) {
                    e->l2h++;
                    data_ready = arrival + (double)e->l2_lat;
                    if (l2_line != NULL) {
                        int is_pf = attr_true(l2_line, s_prefetched);
                        if (is_pf < 0)
                            fail_inner = 1;
                        else if (is_pf) {
                            if (PyObject_SetAttr(l2_line, s_prefetched,
                                                 Py_False) < 0)
                                fail_inner = 1;
                            e->pfo++;
                            e->useful++;
                        }
                        if (!fail_inner) {
                            int err = 0;
                            double ft2 =
                                attr_double(l2_line, s_fill_time, &err);
                            if (err)
                                fail_inner = 1;
                            else if (ft2 > arrival && ft2 > data_ready)
                                data_ready = ft2;
                        }
                    }
                }
                else if (!fail_inner) {
                    /* L2 miss: MainMemory.fetch + _fill_l2, inlined */
                    e->l2m++;
                    t_ = arrival + (double)e->l2_lat;
                    st_ = t_ > e->ma_nf ? t_ : e->ma_nf;
                    e->ma_nf = st_ + 1.0;
                    e->ma_by += 1.0;
                    e->ma_qc += st_ - t_;
                    e->ma_tr += 1;
                    double start2 = st_ + 1.0;
                    if (PyList_GET_SIZE(e->mem_comp) >= e->mem_maxc) {
                        if (PyList_Sort(e->mem_comp) < 0)
                            fail_inner = 1;
                        else {
                            double first = PyFloat_AsDouble(
                                PyList_GET_ITEM(e->mem_comp, 0));
                            if (first == -1.0 && PyErr_Occurred())
                                fail_inner = 1;
                            else {
                                if (first > start2)
                                    start2 = first;
                                if (memcomp_prefix_filter(e, start2) < 0)
                                    fail_inner = 1;
                            }
                        }
                    }
                    if (!fail_inner) {
                        double ready = start2 + (double)e->mem_lat;
                        st_ = ready > e->md_nf ? ready : e->md_nf;
                        e->md_nf = st_ + (double)e->mem_beats;
                        e->md_by += (double)e->mem_beats;
                        e->md_qc += st_ - ready;
                        e->md_tr += 1;
                        data_ready = st_ + (double)e->mem_beats;
                        if (list_append_double(e->mem_comp, data_ready) < 0)
                            fail_inner = 1;
                        e->mem_acc++;
                    }
                    if (!fail_inner) {
                        PyObject *line2 = PyObject_CallFunction(
                            e->cacheline, "Ld", t2, data_ready);
                        if (line2 == NULL)
                            fail_inner = 1;
                        else {
                            if (PyDict_GET_SIZE(l2e) >= e->l2_ways) {
                                PyObject *fk = dict_first_key(l2e);
                                Py_INCREF(fk);
                                PyObject *victim = PyDict_GetItem(l2e, fk);
                                Py_XINCREF(victim);
                                if (PyDict_DelItem(l2e, fk) < 0 ||
                                    PyDict_SetItem(l2e, t2o, line2) < 0)
                                    fail_inner = 1;
                                Py_DECREF(fk);
                                if (!fail_inner && victim != NULL) {
                                    int vpf =
                                        attr_true(victim, s_prefetched);
                                    int vd = attr_true(victim, s_dirty);
                                    if (vpf < 0 || vd < 0)
                                        fail_inner = 1;
                                    else {
                                        if (vpf)
                                            e->pfev++;
                                        if (vd) {
                                            e->wb2++;
                                            st_ = data_ready > e->md_nf
                                                      ? data_ready
                                                      : e->md_nf;
                                            e->md_nf =
                                                st_ + (double)e->mem_beats;
                                            e->md_by +=
                                                (double)e->mem_beats;
                                            e->md_qc += st_ - data_ready;
                                            e->md_tr += 1;
                                        }
                                    }
                                }
                                Py_XDECREF(victim);
                            }
                            else if (PyDict_SetItem(l2e, t2o, line2) < 0)
                                fail_inner = 1;
                            Py_DECREF(line2);
                        }
                    }
                }
                Py_XDECREF(l2_line);
                Py_DECREF(t2o);
                if (fail_inner) {
                    Py_DECREF(blocko);
                    goto fail;
                }
                /* data return over the L1/L2 data channel */
                st_ = data_ready > e->d_nf ? data_ready : e->d_nf;
                e->d_nf = st_ + (double)e->l1_beats;
                e->d_by += (double)e->l1_beats;
                e->d_qc += st_ - data_ready;
                e->d_tr += 1;
                comp = st_ + (double)e->l1_beats;
                /* MSHR register (reap at now, then insert) */
                while (e->heap_len && e->heap[0].t <= v) {
                    HeapItem it;
                    heap_popmin(e, &it);
                    if (mshr_del_if_match(e, it.b, it.t) < 0) {
                        Py_DECREF(blocko);
                        goto fail;
                    }
                }
                PyObject *co = PyFloat_FromDouble(comp);
                if (co == NULL ||
                    PyDict_SetItem(e->msh_inf, blocko, co) < 0) {
                    Py_XDECREF(co);
                    Py_DECREF(blocko);
                    goto fail;
                }
                Py_DECREF(co);
                if (heap_push(e, comp, block) < 0) {
                    Py_DECREF(blocko);
                    goto fail;
                }
                Py_ssize_t sz = PyDict_GET_SIZE(e->msh_inf);
                if (sz > e->msh_pk)
                    e->msh_pk = sz;
                /* L1 fill on the planes (+ victim writeback) */
                long long vt = e->l1tag[s];
                if (vt == tag) {
                    e->l1la[s] = comp;
                    if (!load)
                        e->l1dirty[s] = 1;
                }
                else {
                    int vd = e->l1dirty[s];
                    double old_ft = e->l1ft[s];
                    double old_la = e->l1la[s];
                    e->l1tag[s] = tag;
                    e->l1ft[s] = comp;
                    e->l1la[s] = comp;
                    e->l1dirty[s] = load ? 0 : 1;
                    if (vt >= 0) {
                        if (vd) {
                            e->wb1++;
                            st_ = comp > e->d_nf ? comp : e->d_nf;
                            e->d_nf = st_ + (double)e->l1_beats;
                            e->d_by += (double)e->l1_beats;
                            e->d_qc += st_ - comp;
                            e->d_tr += 1;
                        }
                        if (e->needs_evict) {
                            PyObject *r = PyObject_CallFunction(
                                e->evict_cb, "LLddd", s, vt, comp, old_ft,
                                old_la);
                            if (r == NULL) {
                                Py_DECREF(blocko);
                                goto fail;
                            }
                            Py_DECREF(r);
                        }
                    }
                }
                if (PySet_GET_SIZE(e->poisoned)) {
                    PyObject *so = PyLong_FromLongLong(s);
                    if (so == NULL) {
                        Py_DECREF(blocko);
                        goto fail;
                    }
                    int r = PySet_Discard(e->poisoned, so);
                    Py_DECREF(so);
                    if (r < 0) {
                        Py_DECREF(blocko);
                        goto fail;
                    }
                }
                /* ---- prefetcher training ---- */
                if (e->tcp_fast) {
                    if (tcp_train(e, s, tag, block, v) < 0) {
                        Py_DECREF(blocko);
                        goto fail;
                    }
                }
                else if (e->has_prefetcher) {
                    PyObject *reqs = PyObject_CallFunction(
                        e->observe_cb, "LLLnOd", s, tag, block, i,
                        load ? Py_False : Py_True, v);
                    if (reqs == NULL) {
                        Py_DECREF(blocko);
                        goto fail;
                    }
                    if (reqs != Py_None) {
                        double launch = v + (double)e->pf_delay;
                        Py_ssize_t nr = PyList_GET_SIZE(reqs);
                        for (Py_ssize_t q = 0; q < nr; q++) {
                            long long pb = PyLong_AsLongLong(
                                PyList_GET_ITEM(reqs, q));
                            if (pb == -1 && PyErr_Occurred()) {
                                Py_DECREF(reqs);
                                Py_DECREF(blocko);
                                goto fail;
                            }
                            if (issue_pf_c(e, pb, launch) < 0) {
                                Py_DECREF(reqs);
                                Py_DECREF(blocko);
                                goto fail;
                            }
                        }
                    }
                    Py_DECREF(reqs);
                }
                Py_DECREF(blocko);
            }
            if (!load)
                comp = v + 1.0;
        }
        e->sc++;
        e->comp_arr[i] = comp;
        double m = lc + e->inv_cr;
        if (comp > m)
            m = comp;
        lc = m;
        e->cmt_arr[i] = m;
    }

    clock_gettime(CLOCK_MONOTONIC, &ts1);
    e->epi_ns += (long long)(ts1.tv_sec - ts0.tv_sec) * 1000000000LL +
                 (ts1.tv_nsec - ts0.tv_nsec);
    return Py_BuildValue("dddnL", li, lc, nd, P, last_fb);
fail:
    return NULL;
}

/* ================= TCP fast-path training ================= */

static int
tcp_train(EngineObject *e, long long s, long long tag, long long block,
          double v)
{
    e->pfl++;
    e->tl++;
    PyObject *old_seq = PyList_GET_ITEM(e->tht_hist, s); /* borrowed */
    long long old_sum = e->thtsum[s];
    /* PHT update: learn old_seq -> tag */
    e->pu++;
    long long hi = old_sum & e->seq_mask;
    long long pidx =
        e->n_bits == 0 ? hi : ((hi << e->n_bits) | (s & e->miss_mask));
    PyObject *lru = PyList_GET_ITEM(e->pht_sets, pidx);
    PyObject *entries = PyObject_GetAttr(lru, s_entries);
    if (entries == NULL)
        return -1;
    Py_ssize_t klen = PyTuple_GET_SIZE(old_seq);
    PyObject *et = PyTuple_GET_ITEM(old_seq, klen - 1); /* borrowed */
    PyObject *succ = PyDict_GetItemWithError(entries, et);
    if (succ == NULL && PyErr_Occurred()) {
        Py_DECREF(entries);
        return -1;
    }
    PyObject *tago = PyLong_FromLongLong(tag);
    if (tago == NULL) {
        Py_DECREF(entries);
        return -1;
    }
    if (succ == NULL) {
        if (PyDict_GET_SIZE(entries) >= e->pht_ways) {
            PyObject *fk = dict_first_key(entries);
            Py_INCREF(fk);
            int r = PyDict_DelItem(entries, fk);
            Py_DECREF(fk);
            if (r < 0)
                goto fail;
        }
        PyObject *lst = PyList_New(1);
        if (lst == NULL)
            goto fail;
        Py_INCREF(tago);
        PyList_SET_ITEM(lst, 0, tago);
        int r = PyDict_SetItem(entries, et, lst);
        Py_DECREF(lst);
        if (r < 0)
            goto fail;
    }
    else {
        /* LRU promote, then MRU-front the successor list */
        Py_INCREF(succ);
        if (PyDict_DelItem(entries, et) < 0 ||
            PyDict_SetItem(entries, et, succ) < 0) {
            Py_DECREF(succ);
            goto fail;
        }
        long long s0 = PyLong_AsLongLong(PyList_GET_ITEM(succ, 0));
        if (s0 == -1 && PyErr_Occurred()) {
            Py_DECREF(succ);
            goto fail;
        }
        if (s0 != tag) {
            Py_ssize_t len = PyList_GET_SIZE(succ);
            for (Py_ssize_t q = 0; q < len; q++) {
                long long qv =
                    PyLong_AsLongLong(PyList_GET_ITEM(succ, q));
                if (qv == -1 && PyErr_Occurred()) {
                    Py_DECREF(succ);
                    goto fail;
                }
                if (qv == tag) {
                    if (PyList_SetSlice(succ, q, q + 1, NULL) < 0) {
                        Py_DECREF(succ);
                        goto fail;
                    }
                    break;
                }
            }
            if (PyList_Insert(succ, 0, tago) < 0) {
                Py_DECREF(succ);
                goto fail;
            }
            Py_ssize_t ln2 = PyList_GET_SIZE(succ);
            if (ln2 > e->pht_targets &&
                PyList_SetSlice(succ, e->pht_targets, ln2, NULL) < 0) {
                Py_DECREF(succ);
                goto fail;
            }
        }
        Py_DECREF(succ);
    }
    /* THT push: new row = old_seq[1:] + (tag,), running sum updated */
    {
        PyObject *newseq = PyTuple_New(klen);
        if (newseq == NULL)
            goto fail;
        for (Py_ssize_t q = 1; q < klen; q++) {
            PyObject *it = PyTuple_GET_ITEM(old_seq, q);
            Py_INCREF(it);
            PyTuple_SET_ITEM(newseq, q - 1, it);
        }
        Py_INCREF(tago);
        PyTuple_SET_ITEM(newseq, klen - 1, tago);
        long long seq0 = PyLong_AsLongLong(PyTuple_GET_ITEM(old_seq, 0));
        if (seq0 == -1 && PyErr_Occurred()) {
            Py_DECREF(newseq);
            goto fail;
        }
        if (PyList_SetItem(e->tht_hist, s, newseq) < 0) /* steals */
            goto fail;
        old_sum = old_sum - seq0 + tag;
        e->thtsum[s] = old_sum;
    }
    e->tp++;
    e->pfu++;
    /* PHT predict on the new sequence (new_seq[-1] == tag) */
    e->pl++;
    hi = old_sum & e->seq_mask;
    pidx = e->n_bits == 0 ? hi : ((hi << e->n_bits) | (s & e->miss_mask));
    Py_DECREF(entries);
    lru = PyList_GET_ITEM(e->pht_sets, pidx);
    entries = PyObject_GetAttr(lru, s_entries);
    if (entries == NULL) {
        Py_DECREF(tago);
        return -1;
    }
    succ = PyDict_GetItemWithError(entries, tago);
    if (succ == NULL && PyErr_Occurred())
        goto fail;
    if (succ != NULL) {
        Py_INCREF(succ);
        if (PyDict_DelItem(entries, tago) < 0 ||
            PyDict_SetItem(entries, tago, succ) < 0) {
            Py_DECREF(succ);
            goto fail;
        }
        e->ph++;
        double launch = v + (double)e->pf_delay;
        long long npred = 0;
        Py_ssize_t nsucc = PyList_GET_SIZE(succ);
        for (Py_ssize_t q = 0; q < nsucc; q++) {
            long long nt = PyLong_AsLongLong(PyList_GET_ITEM(succ, q));
            if (nt == -1 && PyErr_Occurred()) {
                Py_DECREF(succ);
                goto fail;
            }
            long long pb = (nt << e->tht_ib) | s;
            if (pb == block)
                continue;
            npred++;
            if (issue_pf_c(e, pb, launch) < 0) {
                Py_DECREF(succ);
                goto fail;
            }
        }
        e->pfp += npred;
        Py_DECREF(succ);
    }
    Py_DECREF(entries);
    Py_DECREF(tago);
    return 0;
fail:
    Py_DECREF(entries);
    Py_DECREF(tago);
    return -1;
}

/* ================= methods ================= */

static PyObject *
Engine_sync_out(EngineObject *e, PyObject *Py_UNUSED(ignored))
{
    if (sync_out_internal(e) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Engine_sync_in(EngineObject *e, PyObject *Py_UNUSED(ignored))
{
    if (sync_in_internal(e) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Engine_set_callbacks(EngineObject *e, PyObject *args)
{
    PyObject *ifetch_cb, *observe_cb, *evict_cb;
    if (!PyArg_ParseTuple(args, "OOO", &ifetch_cb, &observe_cb, &evict_cb))
        return NULL;
    Py_INCREF(ifetch_cb);
    Py_XSETREF(e->ifetch_cb, ifetch_cb);
    Py_INCREF(observe_cb);
    Py_XSETREF(e->observe_cb, observe_cb);
    Py_INCREF(evict_cb);
    Py_XSETREF(e->evict_cb, evict_cb);
    Py_RETURN_NONE;
}

static PyObject *
Engine_take_stats(EngineObject *e, PyObject *Py_UNUSED(ignored))
{
    PyObject *d = PyDict_New();
    if (d == NULL)
        return NULL;
#define PUT(name, val)                                                   \
    do {                                                                 \
        PyObject *o = PyLong_FromLongLong((long long)(val));             \
        if (o == NULL || PyDict_SetItemString(d, name, o) < 0) {         \
            Py_XDECREF(o);                                               \
            Py_DECREF(d);                                                \
            return NULL;                                                 \
        }                                                                \
        Py_DECREF(o);                                                    \
    } while (0)
    PUT("demand", e->dc);
    PUT("loads", e->ldc);
    PUT("stores", e->stc);
    PUT("hits", e->hc);
    PUT("ifetch", e->ifc);
    PUT("l1m", e->l1m);
    PUT("l2a", e->l2a);
    PUT("l2h", e->l2h);
    PUT("l2m", e->l2m);
    PUT("pfo", e->pfo);
    PUT("useful", e->useful);
    PUT("mgd", e->mgd);
    PUT("wb1", e->wb1);
    PUT("wb2", e->wb2);
    PUT("pfr", e->pfr);
    PUT("pfi", e->pfi);
    PUT("pfred", e->pfred);
    PUT("pfdq", e->pfdq);
    PUT("pfdb", e->pfdb);
    PUT("pfev", e->pfev);
    PUT("pfl", e->pfl);
    PUT("pfu", e->pfu);
    PUT("pfp", e->pfp);
    PUT("tl", e->tl);
    PUT("tp", e->tp);
    PUT("pu", e->pu);
    PUT("pl", e->pl);
    PUT("ph", e->ph);
    PUT("sc", e->sc);
    PUT("mshr_full_stalls", e->msh_fs);
    PUT("poisoned_peak", e->poison_peak);
    PUT("epi_ns", e->epi_ns);
#undef PUT
    e->dc = e->ldc = e->stc = e->hc = e->ifc = 0;
    e->l1m = e->l2a = e->l2h = e->l2m = 0;
    e->pfo = e->useful = e->mgd = e->wb1 = e->wb2 = 0;
    e->pfr = e->pfi = e->pfred = e->pfdq = e->pfdb = e->pfev = 0;
    e->pfl = e->pfu = e->pfp = e->tl = e->tp = 0;
    e->pu = e->pl = e->ph = 0;
    e->sc = 0;
    return d;
}

/* ================= construction / teardown ================= */

static int
get_buffer(PyObject *spec, const char *key, Py_buffer *view, int writable,
           Py_ssize_t itemsize, void *ptr_out, int *have)
{
    PyObject *obj = PyDict_GetItemString(spec, key);
    if (obj == NULL || obj == Py_None) {
        if (have != NULL) {
            *have = 0;
            *(void **)ptr_out = NULL;
            return 0;
        }
        PyErr_Format(PyExc_KeyError, "spec missing array %s", key);
        return -1;
    }
    int flags = writable ? PyBUF_CONTIG : PyBUF_CONTIG_RO;
    if (PyObject_GetBuffer(obj, view, flags) < 0)
        return -1;
    if (view->itemsize != itemsize) {
        PyErr_Format(PyExc_TypeError, "spec array %s: itemsize %zd != %zd",
                     key, view->itemsize, itemsize);
        PyBuffer_Release(view);
        view->obj = NULL;
        return -1;
    }
    *(void **)ptr_out = view->buf;
    if (have != NULL)
        *have = 1;
    return 0;
}

static int
get_obj(PyObject *spec, const char *key, PyObject **out, int optional)
{
    PyObject *obj = PyDict_GetItemString(spec, key);
    if (obj == NULL || (optional && obj == Py_None)) {
        if (!optional && obj == NULL) {
            PyErr_Format(PyExc_KeyError, "spec missing object %s", key);
            return -1;
        }
        *out = NULL;
        return 0;
    }
    Py_INCREF(obj);
    *out = obj;
    return 0;
}

static int
get_ll(PyObject *spec, const char *key, long long *out)
{
    PyObject *obj = PyDict_GetItemString(spec, key);
    if (obj == NULL) {
        PyErr_Format(PyExc_KeyError, "spec missing int %s", key);
        return -1;
    }
    long long v = PyLong_AsLongLong(obj);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *out = v;
    return 0;
}

static int
get_f(PyObject *spec, const char *key, double *out)
{
    PyObject *obj = PyDict_GetItemString(spec, key);
    if (obj == NULL) {
        PyErr_Format(PyExc_KeyError, "spec missing float %s", key);
        return -1;
    }
    double v = PyFloat_AsDouble(obj);
    if (v == -1.0 && PyErr_Occurred())
        return -1;
    *out = v;
    return 0;
}

static int
Engine_init(EngineObject *e, PyObject *args, PyObject *kwds)
{
    PyObject *spec;
    static char *kwlist[] = {"spec", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!", kwlist, &PyDict_Type,
                                     &spec))
        return -1;
    long long tmp;
#define GETBUF(key, view, writable, isz, field, have)                    \
    if (get_buffer(spec, key, &e->view, writable, isz, &e->field, have) < 0) \
        return -1
    GETBUF("idx", idx_b, 0, 8, idx, NULL);
    GETBUF("instr", instr_b, 0, 8, instr, NULL);
    GETBUF("blocks", blocks_b, 0, 8, blocks, NULL);
    GETBUF("tags", tags_b, 0, 8, tags, NULL);
    GETBUF("deps", deps_b, 0, 8, deps, NULL);
    GETBUF("load", load_b, 0, 1, load, NULL);
    GETBUF("incs", incs_b, 0, 8, incs, NULL);
    GETBUF("l2i", l2i_b, 0, 8, l2i, NULL);
    GETBUF("l2t", l2t_b, 0, 8, l2t, NULL);
    GETBUF("fb", fb_b, 0, 8, fb, &e->have_fb);
    GETBUF("completions", comp_b, 1, 8, comp_arr, NULL);
    GETBUF("commits", cmt_b, 1, 8, cmt_arr, NULL);
    GETBUF("l1_tag", l1tag_b, 1, 8, l1tag, NULL);
    GETBUF("l1_la", l1la_b, 1, 8, l1la, NULL);
    GETBUF("l1_ft", l1ft_b, 1, 8, l1ft, NULL);
    GETBUF("l1_dirty", l1dirty_b, 1, 1, l1dirty, NULL);
    GETBUF("tht_sums", thtsum_b, 1, 8, thtsum, &e->have_thtsum);
#undef GETBUF
    e->n = e->comp_b.len / (Py_ssize_t)sizeof(double);

    if (get_obj(spec, "msh_inf", &e->msh_inf, 0) < 0 ||
        get_obj(spec, "mem_comp", &e->mem_comp, 0) < 0 ||
        get_obj(spec, "pf_inflight", &e->pf_inflight, 0) < 0 ||
        get_obj(spec, "l2_entries", &e->l2_entries, 0) < 0 ||
        get_obj(spec, "l2_sets", &e->l2_sets, 0) < 0 ||
        get_obj(spec, "pht_sets", &e->pht_sets, 1) < 0 ||
        get_obj(spec, "tht_hist", &e->tht_hist, 1) < 0 ||
        get_obj(spec, "poisoned", &e->poisoned, 0) < 0 ||
        get_obj(spec, "resident", &e->resident, 0) < 0 ||
        get_obj(spec, "cacheline", &e->cacheline, 0) < 0 ||
        get_obj(spec, "l1i_lookup", &e->l1i_lookup, 0) < 0 ||
        get_obj(spec, "ab", &e->ab, 0) < 0 ||
        get_obj(spec, "db", &e->db, 0) < 0 ||
        get_obj(spec, "mab", &e->mab, 0) < 0 ||
        get_obj(spec, "mdb", &e->mdb, 0) < 0 ||
        get_obj(spec, "mshr", &e->mshr, 0) < 0 ||
        get_obj(spec, "memory", &e->memory, 0) < 0 ||
        get_obj(spec, "hierarchy", &e->hierarchy, 0) < 0)
        return -1;

#define GETLL(key, field)                                                \
    do {                                                                 \
        if (get_ll(spec, key, &tmp) < 0)                                 \
            return -1;                                                   \
        e->field = tmp;                                                  \
    } while (0)
    GETLL("window", window);
    GETLL("lsq", lsq);
    GETLL("l1_lat", l1_lat);
    GETLL("l2_lat", l2_lat);
    GETLL("l1_beats", l1_beats);
    GETLL("mem_beats", mem_beats);
    GETLL("mem_lat", mem_lat);
    GETLL("mem_maxc", mem_maxc);
    GETLL("msh_entries", msh_entries);
    GETLL("l2_ways", l2_ways);
    GETLL("pf_max", pf_max);
    GETLL("pht_ways", pht_ways);
    GETLL("pht_targets", pht_targets);
    GETLL("l2_shift", l2_shift);
    GETLL("l2_imask", l2_imask);
    GETLL("l2_ibits", l2_ibits);
    GETLL("l1_ib", l1_ib);
    GETLL("l1i_mask", l1i_mask);
    GETLL("l1i_bits", l1i_bits);
    GETLL("seq_mask", seq_mask);
    GETLL("miss_mask", miss_mask);
    GETLL("n_bits", n_bits);
    GETLL("tht_ib", tht_ib);
    GETLL("pf_delay", pf_delay);
    GETLL("lru_pf", lru_pf);
    GETLL("ideal_l2", ideal_l2);
    GETLL("model_icache", model_icache);
    GETLL("tcp_fast", tcp_fast);
    GETLL("has_prefetcher", has_prefetcher);
    GETLL("needs_evict", needs_evict);
#undef GETLL
    if (get_f(spec, "ls_s", &e->ls_s) < 0 ||
        get_f(spec, "inv_cr", &e->inv_cr) < 0 ||
        get_f(spec, "pf_busy_thr", &e->pf_busy_thr) < 0)
        return -1;
    if (e->model_icache && !e->have_fb) {
        PyErr_SetString(PyExc_ValueError, "model_icache without fb plane");
        return -1;
    }
    if (e->tcp_fast && (e->pht_sets == NULL || e->tht_hist == NULL ||
                        !e->have_thtsum)) {
        PyErr_SetString(PyExc_ValueError, "tcp_fast without THT/PHT state");
        return -1;
    }
    return 0;
}

static void
Engine_dealloc(EngineObject *e)
{
    Py_buffer *views[] = {
        &e->idx_b, &e->instr_b, &e->blocks_b, &e->tags_b, &e->deps_b,
        &e->load_b, &e->incs_b, &e->l2i_b, &e->l2t_b, &e->fb_b,
        &e->comp_b, &e->cmt_b, &e->l1tag_b, &e->l1la_b, &e->l1ft_b,
        &e->l1dirty_b, &e->thtsum_b,
    };
    for (size_t q = 0; q < sizeof(views) / sizeof(views[0]); q++) {
        if (views[q]->obj != NULL)
            PyBuffer_Release(views[q]);
    }
    Py_XDECREF(e->msh_inf);
    Py_XDECREF(e->mem_comp);
    Py_XDECREF(e->pf_inflight);
    Py_XDECREF(e->l2_entries);
    Py_XDECREF(e->l2_sets);
    Py_XDECREF(e->pht_sets);
    Py_XDECREF(e->tht_hist);
    Py_XDECREF(e->poisoned);
    Py_XDECREF(e->resident);
    Py_XDECREF(e->cacheline);
    Py_XDECREF(e->l1i_lookup);
    Py_XDECREF(e->ab);
    Py_XDECREF(e->db);
    Py_XDECREF(e->mab);
    Py_XDECREF(e->mdb);
    Py_XDECREF(e->mshr);
    Py_XDECREF(e->memory);
    Py_XDECREF(e->hierarchy);
    Py_XDECREF(e->ifetch_cb);
    Py_XDECREF(e->observe_cb);
    Py_XDECREF(e->evict_cb);
    PyMem_Free(e->heap);
    Py_TYPE(e)->tp_free((PyObject *)e);
}

static PyMethodDef Engine_methods[] = {
    {"step", (PyCFunction)Engine_step, METH_VARARGS,
     "step(i, limit, li, lc, nd, P, last_fb) -> (li, lc, nd, P, last_fb)\n"
     "Run the scalar epilogue for accesses [i, limit)."},
    {"sync_out", (PyCFunction)Engine_sync_out, METH_NOARGS,
     "Write mirrored component scalars back to the live objects."},
    {"sync_in", (PyCFunction)Engine_sync_in, METH_NOARGS,
     "Reload mirrored component scalars and rebuild the MSHR heap."},
    {"set_callbacks", (PyCFunction)Engine_set_callbacks, METH_VARARGS,
     "set_callbacks(ifetch_cb, observe_cb, evict_cb)"},
    {"take_stats", (PyCFunction)Engine_take_stats, METH_NOARGS,
     "Drain accumulated stat deltas as a dict (and reset them)."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject EngineType = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro.backend.native._native.Engine",
    .tp_basicsize = sizeof(EngineObject),
    .tp_itemsize = 0,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Compiled scalar epilogue operating on live simulator state.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Engine_init,
    .tp_dealloc = (destructor)Engine_dealloc,
    .tp_methods = Engine_methods,
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_native",
    .m_doc = "Compiled scalar epilogue for the native simulation backend.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__native(void)
{
#define INTERN(var, text)                                                \
    do {                                                                 \
        var = PyUnicode_InternFromString(text);                          \
        if (var == NULL)                                                 \
            return NULL;                                                 \
    } while (0)
    INTERN(s_entries, "_entries");
    INTERN(s_last_access, "last_access");
    INTERN(s_prefetched, "prefetched");
    INTERN(s_fill_time, "fill_time");
    INTERN(s_dirty, "dirty");
    INTERN(s_next_free, "next_free");
    INTERN(s_busy_cycles, "busy_cycles");
    INTERN(s_queued_cycles, "queued_cycles");
    INTERN(s_transfers, "transfers");
    INTERN(s_earliest, "_earliest");
    INTERN(s_full_stalls, "full_stalls");
    INTERN(s_merges, "merges");
    INTERN(s_peak_occupancy, "peak_occupancy");
    INTERN(s_completions_attr, "_completions");
    INTERN(s_accesses, "accesses");
    INTERN(s_pf_inflight_attr, "_pf_inflight");
#undef INTERN
    if (PyType_Ready(&EngineType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&native_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&EngineType);
    if (PyModule_AddObject(m, "Engine", (PyObject *)&EngineType) < 0) {
        Py_DECREF(&EngineType);
        Py_DECREF(m);
        return NULL;
    }
    if (PyModule_AddIntConstant(m, "ABI_VERSION", 1) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
