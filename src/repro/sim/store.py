"""Persistent, checkpointed result store for simulation campaigns.

The in-process result cache (:mod:`repro.sim.runner`) evaporates when
the process exits; for a ~150-simulation campaign that means one crash
throws away hours of work.  :class:`ResultStore` is the durable tier
underneath it: an append-only JSON-lines file of validated
:class:`~repro.sim.results.SimResult` records keyed by
``(workload, accesses, config fingerprint)``.

Design points:

* **Write-through, append-only.**  ``put`` validates, appends one
  line, and flushes — a killed campaign keeps every completed result.
* **Schema versioning.**  Records carry ``schema``; records written by
  an incompatible store version are ignored (treated as absent), so a
  format change can never resurrect stale bytes as results.
* **Config-hash invalidation.**  The key includes a SHA-256
  fingerprint of the full :class:`~repro.sim.config.SimulationConfig`
  (machine parameters included), so any config change misses cleanly.
* **Quarantine, never trust.**  Every record is re-validated on load;
  unparsable or invariant-violating lines are moved to
  ``quarantine.jsonl`` and the store file is rewritten without them —
  a corrupt checkpoint is re-run, never silently plotted.

The *active store* module global is how the rest of the package opts
in: :func:`active_store` returns the explicitly installed store, else
one built from ``REPRO_STORE_DIR`` (``REPRO_NO_STORE`` force-disables
both).  ``simulate()`` reads and writes through whatever is active.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.sim.config import SimulationConfig
from repro.sim.results import SimResult, validate_result

__all__ = [
    "ResultStore",
    "SCHEMA_VERSION",
    "active_store",
    "clear_active_store",
    "config_fingerprint",
    "default_obs_dir",
    "default_store_dir",
    "set_active_store",
    "store_from_env",
    "use_store",
]

#: bump when the record layout or SimResult payload shape changes;
#: older records are then invisible (and harmless).
SCHEMA_VERSION = 1

STORE_DIR_ENV = "REPRO_STORE_DIR"
NO_STORE_ENV = "REPRO_NO_STORE"

#: (workload, accesses, config fingerprint)
StoreKey = Tuple[str, int, str]


def config_fingerprint(config: SimulationConfig) -> str:
    """Stable short hash of every parameter of a configuration.

    ``SimulationConfig`` is a frozen dataclass tree of scalars, so its
    ``repr`` is canonical and deterministic across processes; hashing
    it means *any* parameter change (prefetcher, core, hierarchy,
    label) invalidates stored results for that configuration.

    The ``sanitize`` field is excluded: invariant checking observes a
    run without changing its results, so a sanitized campaign resumes
    from (and writes to) the same checkpoints as an unsanitized one.
    """
    if getattr(config, "sanitize", None) is not None:
        config = replace(config, sanitize=None)
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


class ResultStore:
    """Append-only JSON-lines store of validated simulation results."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "results.jsonl"
        self.quarantine_path = self.root / "quarantine.jsonl"
        self.progress_path = self.root / "progress.jsonl"
        self._index: Optional[Dict[StoreKey, SimResult]] = None
        self._progress: Optional[Dict[StoreKey, Dict[str, Any]]] = None
        #: corrupt records found (and quarantined) by the last load.
        self.quarantined = 0
        #: records ignored because their schema version is foreign.
        self.stale = 0

    # -- loading ----------------------------------------------------------

    def _decode(self, line: str) -> Tuple[StoreKey, SimResult]:
        """Parse one record line; raise ``ValueError`` if it is corrupt."""
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError("record is not an object")
        key = (
            str(record["workload"]),
            int(record["accesses"]),
            str(record["config"]),
        )
        result = SimResult.from_dict(record["result"])
        validate_result(result)
        if result.workload != key[0]:
            raise ValueError(
                f"workload mismatch: key {key[0]!r} vs payload {result.workload!r}"
            )
        return key, result

    def _load(self) -> Dict[StoreKey, SimResult]:
        if self._index is not None:
            return self._index
        index: Dict[StoreKey, SimResult] = {}
        good_lines: List[str] = []
        bad_lines: List[str] = []
        self.quarantined = 0
        self.stale = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    text = line.strip()
                    if not text:
                        continue
                    try:
                        record = json.loads(text)
                        if (
                            not isinstance(record, dict)
                            or record.get("schema") != SCHEMA_VERSION
                        ):
                            if isinstance(record, dict) and "schema" in record:
                                self.stale += 1  # foreign version: ignore, keep
                                good_lines.append(text)
                                continue
                            raise ValueError("missing schema version")
                        key, result = self._decode(text)
                    except (ValueError, KeyError, TypeError):
                        self.quarantined += 1
                        bad_lines.append(text)
                        continue
                    index[key] = result  # last write wins
                    good_lines.append(text)
        if bad_lines:
            with self.quarantine_path.open("a", encoding="utf-8") as handle:
                for text in bad_lines:
                    handle.write(text + "\n")
            self._rewrite(good_lines)
        self._index = index
        return index

    def _rewrite(self, lines: List[str]) -> None:
        """Atomically replace the store file with the surviving records."""
        tmp = self.path.with_suffix(".jsonl.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for text in lines:
                handle.write(text + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    # -- reading ----------------------------------------------------------

    def get(
        self, workload: str, accesses: int, config: SimulationConfig
    ) -> Optional[SimResult]:
        """The stored result for this (workload, scale, config), if any."""
        return self._load().get((workload, accesses, config_fingerprint(config)))

    def __contains__(self, key: StoreKey) -> bool:
        return key in self._load()

    def __len__(self) -> int:
        return len(self._load())

    def keys(self) -> Iterator[StoreKey]:
        return iter(self._load())

    # -- writing ----------------------------------------------------------

    def put(
        self,
        workload: str,
        accesses: int,
        config: SimulationConfig,
        result: SimResult,
    ) -> None:
        """Validate and durably append one result (write-through)."""
        validate_result(result)
        key = (workload, accesses, config_fingerprint(config))
        record = {
            "schema": SCHEMA_VERSION,
            "workload": workload,
            "accesses": accesses,
            "config": key[2],
            "config_label": config.resolved_label(),
            "result": result.to_dict(),
        }
        line = json.dumps(record, separators=(",", ":"), allow_nan=False)
        index = self._load()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        index[key] = result

    def clear(self) -> None:
        """Drop every stored record (keeps the quarantine file)."""
        if self.path.exists():
            self.path.unlink()
        self._index = {}
        self.quarantined = 0
        self.stale = 0

    # -- mid-run progress markers -----------------------------------------
    #
    # Coarse checkpoints of *incomplete* jobs, fed by worker heartbeats.
    # Append-only JSON lines, last write wins; flushed but not fsynced
    # (losing the last marker costs nothing — the job re-runs anyway,
    # the marker only reports how far a preempted job got).

    def _load_progress(self) -> Dict[StoreKey, Dict[str, Any]]:
        if self._progress is not None:
            return self._progress
        progress: Dict[StoreKey, Dict[str, Any]] = {}
        if self.progress_path.exists():
            with self.progress_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    text = line.strip()
                    if not text:
                        continue
                    try:
                        record = json.loads(text)
                        if (
                            not isinstance(record, dict)
                            or record.get("schema") != SCHEMA_VERSION
                        ):
                            continue
                        key = (
                            str(record["workload"]),
                            int(record["accesses"]),
                            str(record["config"]),
                        )
                        progress[key] = record  # last write wins
                    except (ValueError, KeyError, TypeError):
                        continue  # a torn marker line is worthless; skip
        self._progress = progress
        return progress

    def put_progress(
        self,
        workload: str,
        accesses: int,
        config: SimulationConfig,
        done: int,
        total: int,
        sim_time: float,
    ) -> None:
        """Append one mid-run checkpoint marker for an incomplete job."""
        key = (workload, accesses, config_fingerprint(config))
        record = {
            "schema": SCHEMA_VERSION,
            "workload": workload,
            "accesses": accesses,
            "config": key[2],
            "done": int(done),
            "total": int(total),
            "sim_time": float(sim_time),
        }
        progress = self._load_progress()
        line = json.dumps(record, separators=(",", ":"), allow_nan=False)
        with self.progress_path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
        progress[key] = record

    def get_progress(
        self, workload: str, accesses: int, config: SimulationConfig
    ) -> Optional[Dict[str, Any]]:
        """The latest checkpoint marker for this job, if any."""
        key = (workload, accesses, config_fingerprint(config))
        return self._load_progress().get(key)

    def progress_entries(self) -> Dict[StoreKey, Dict[str, Any]]:
        """All latest markers, keyed like the result index."""
        return dict(self._load_progress())

    def clear_progress(self) -> None:
        """Drop every checkpoint marker (e.g. after a campaign finishes)."""
        if self.progress_path.exists():
            self.progress_path.unlink()
        self._progress = {}


# ---------------------------------------------------------------------------
# The active store (what simulate()/prewarm() write through to)
# ---------------------------------------------------------------------------

_ACTIVE_STORE: Optional[ResultStore] = None
_ACTIVE_EXPLICIT = False


def default_store_dir() -> Path:
    """``REPRO_STORE_DIR`` if set, else ``~/.cache/repro-tcp``."""
    env = os.environ.get(STORE_DIR_ENV)
    if env:
        return Path(env)
    return Path(os.path.expanduser("~")) / ".cache" / "repro-tcp"


def default_obs_dir() -> Path:
    """Where observability output (traces, metrics snapshots) lands.

    Next to the *active* store when one is installed — a campaign's
    trace belongs with the results it describes — else under the
    default store root.  Mirrors :func:`default_trace_cache_dir`.
    """
    store = active_store()
    if store is not None:
        return store.root / "obs"
    return default_store_dir() / "obs"


def default_trace_cache_dir() -> Path:
    """Where generated traces are cached by default: next to the store.

    The trace cache (:mod:`repro.workloads.io`) and the result store
    are two tiers of the same campaign persistence, so they live under
    the same root unless ``REPRO_TRACE_CACHE`` says otherwise.
    """
    return default_store_dir() / "traces"


def store_from_env() -> Optional[ResultStore]:
    """A store configured purely by the environment, or ``None``.

    ``REPRO_STORE_DIR=<dir>`` enables persistence at that directory;
    ``REPRO_NO_STORE`` (any non-empty value) force-disables it.
    """
    if os.environ.get(NO_STORE_ENV):
        return None
    env = os.environ.get(STORE_DIR_ENV)
    if not env:
        return None
    return ResultStore(env)


def set_active_store(store: Optional[ResultStore]) -> Optional[ResultStore]:
    """Install the store ``simulate()`` writes through to; returns the old.

    ``None`` means "explicitly no store" (persistence off even if
    ``REPRO_STORE_DIR`` is set); use :func:`clear_active_store` to
    return to environment-driven behaviour.
    """
    global _ACTIVE_STORE, _ACTIVE_EXPLICIT
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = store
    _ACTIVE_EXPLICIT = True
    return previous


def clear_active_store() -> None:
    """Forget any explicit store; :func:`active_store` follows the env."""
    global _ACTIVE_STORE, _ACTIVE_EXPLICIT
    _ACTIVE_STORE = None
    _ACTIVE_EXPLICIT = False


def active_store() -> Optional[ResultStore]:
    """The store the simulation layer should use right now (or None)."""
    if os.environ.get(NO_STORE_ENV):
        return None
    if _ACTIVE_EXPLICIT:
        return _ACTIVE_STORE
    return store_from_env()


@contextmanager
def use_store(store: Optional[ResultStore]):
    """Context manager: temporarily make ``store`` the active store."""
    global _ACTIVE_STORE, _ACTIVE_EXPLICIT
    previous, previous_explicit = _ACTIVE_STORE, _ACTIVE_EXPLICIT
    _ACTIVE_STORE = store
    _ACTIVE_EXPLICIT = True
    try:
        yield store
    finally:
        _ACTIVE_STORE, _ACTIVE_EXPLICIT = previous, previous_explicit
