"""Tests for the synthetic SPEC2000-analogue benchmark suite."""

import numpy as np
import pytest

from repro.workloads import BENCHMARK_ORDER, SUITE, Scale, generate, generate_all


class TestSuiteStructure:
    def test_26_benchmarks(self):
        assert len(SUITE) == 26
        assert len(BENCHMARK_ORDER) == 26
        assert set(SUITE) == set(BENCHMARK_ORDER)

    def test_paper_order_endpoints(self):
        # Figure 1 order: fma3d has the least ideal-L2 potential, mcf the most.
        assert BENCHMARK_ORDER[0] == "fma3d"
        assert BENCHMARK_ORDER[-1] == "mcf"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            generate("doom3")

    def test_every_spec_has_summary(self):
        for spec in SUITE.values():
            assert spec.summary
            assert spec.base_ipc > 0


class TestGeneration:
    def test_deterministic(self):
        first = generate("swim", Scale.QUICK)
        second = generate("swim", Scale.QUICK)
        assert first is second  # cached
        # regenerate bypassing the cache by rebuilding from the spec
        from repro.util.rng import make_rng
        from repro.workloads.kernels import TraceBuilder

        spec = SUITE["swim"]
        builder = TraceBuilder("swim", base_ipc=spec.base_ipc)
        spec.build(builder, make_rng("swim"), Scale.QUICK.accesses)
        rebuilt = builder.build()
        assert (rebuilt.addrs == first.addrs).all()
        assert (rebuilt.deps == first.deps).all()

    def test_lengths_near_target(self):
        for name in ("fma3d", "swim", "mcf", "twolf"):
            trace = generate(name, Scale.QUICK)
            target = Scale.QUICK.accesses
            assert 0.8 * target <= len(trace) <= 1.3 * target, name

    def test_generate_all_covers_suite(self):
        traces = generate_all(Scale.QUICK)
        assert list(traces) == list(BENCHMARK_ORDER)

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_every_trace_is_valid(self, name):
        trace = generate(name, Scale.QUICK)
        n = len(trace)
        assert n > 0
        assert (trace.deps >= 0).all()
        assert (trace.deps <= np.arange(n)).all()
        assert trace.instruction_count > n  # gaps exist
        assert trace.is_load.any()


class TestBehaviouralClasses:
    def test_pointer_chases_carry_dependences(self):
        for name in ("mcf", "parser", "ammp"):
            trace = generate(name, Scale.QUICK)
            assert (trace.deps > 0).mean() > 0.2, name

    def test_compute_benchmarks_have_few_dependences(self):
        for name in ("fma3d", "crafty", "swim"):
            trace = generate(name, Scale.QUICK)
            assert (trace.deps > 0).mean() < 0.2, name

    def test_memory_bound_benchmarks_have_bigger_footprints(self):
        def footprint(name):
            trace = generate(name, Scale.QUICK)
            return len(np.unique(trace.addrs >> np.uint64(5))) * 32

        assert footprint("mcf") > 4 * footprint("fma3d")
        assert footprint("swim") > 4 * footprint("eon")

    def test_stores_present_where_expected(self):
        for name in ("swim", "ammp", "mesa"):
            trace = generate(name, Scale.QUICK)
            assert (~trace.is_load).any(), name
