"""Cache-block live-time and dead-time analysis.

The timekeeping dead-block predictor (Hu et al., used by the paper's
hybrid prefetcher) rests on an empirical claim: a block's *live time*
(fill to last touch) is short and repetitive, while its *dead time*
(last touch to eviction) is long — so "idle longer than the historical
live time" is a reliable death test.  This module measures both
distributions for any workload by replaying its trace through the L1
geometry, giving the hybrid's gate an evidence base instead of a
folklore parameter.

Outputs per workload:

* the live-time and dead-time distributions (mean/percentiles);
* the dead-to-live ratio (the bigger it is, the safer idle-based
  death prediction);
* generation-to-generation live-time predictability: how often a
  block's next live time is within 2x of its previous one — the
  quantity the predictor's history table actually banks on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.memory.address import CacheGeometry
from repro.util.stats import RunningStat
from repro.workloads import Scale, Trace, generate

__all__ = ["LiveTimeStats", "live_time_stats"]


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    position = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[position]


@dataclass(frozen=True)
class LiveTimeStats:
    """Live/dead-time characterisation of one workload (in accesses)."""

    workload: str
    generations: int
    mean_live: float
    median_live: float
    p90_live: float
    mean_dead: float
    median_dead: float
    #: mean dead time over mean live time (>1 favours idle-based death
    #: prediction; the timekeeping paper reports large ratios).
    dead_to_live_ratio: float
    #: fraction of re-generations whose live time is within 2x of the
    #: block's previous generation (history predictability).
    live_time_repeatability: float


def live_time_stats(
    workload: Union[str, Trace],
    scale: Scale = Scale.STANDARD,
    geometry: CacheGeometry = CacheGeometry(32 * 1024, 1, 32),
) -> LiveTimeStats:
    """Measure live/dead times of L1 blocks for ``workload``.

    Time is measured in accesses (the trace has no cycle times); ratios
    and repeatability are time-unit free.
    """
    trace = generate(workload, scale) if isinstance(workload, str) else workload
    blocks, indices, _tags = geometry.decompose_array(trace.addrs)

    # per-set resident block and its (fill position, last touch position)
    resident: List[int] = [-1] * geometry.sets
    fill_at: List[int] = [0] * geometry.sets
    last_touch: List[int] = [0] * geometry.sets

    live_times: List[float] = []
    dead_times: List[float] = []
    previous_live: Dict[int, float] = {}
    repeats = 0
    repeat_hits = 0

    for position in range(len(blocks)):
        index = indices[position]
        block = blocks[position]
        if resident[index] == block:
            last_touch[index] = position
            continue
        victim = resident[index]
        if victim != -1:
            live = float(last_touch[index] - fill_at[index])
            dead = float(position - last_touch[index])
            live_times.append(live)
            dead_times.append(dead)
            earlier = previous_live.get(victim)
            if earlier is not None:
                repeats += 1
                if earlier == 0 and live == 0:
                    repeat_hits += 1
                elif earlier > 0 and 0.5 <= (live / earlier if earlier else 0) <= 2.0:
                    repeat_hits += 1
            previous_live[victim] = live
        resident[index] = block
        fill_at[index] = position
        last_touch[index] = position

    if not live_times:
        return LiveTimeStats(trace.name, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    live_sorted = sorted(live_times)
    dead_sorted = sorted(dead_times)
    live_stat = RunningStat()
    live_stat.extend(live_times)
    dead_stat = RunningStat()
    dead_stat.extend(dead_times)
    ratio = (dead_stat.mean / live_stat.mean) if live_stat.mean > 0 else float("inf")
    return LiveTimeStats(
        workload=trace.name,
        generations=len(live_times),
        mean_live=live_stat.mean,
        median_live=_percentile(live_sorted, 0.5),
        p90_live=_percentile(live_sorted, 0.9),
        mean_dead=dead_stat.mean,
        median_dead=_percentile(dead_sorted, 0.5),
        dead_to_live_ratio=ratio,
        live_time_repeatability=(repeat_hits / repeats) if repeats else 0.0,
    )
