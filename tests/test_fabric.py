"""Tests for the multi-host campaign fabric.

These prove the fleet acceptance paths: the host-spec grammar; the
JSONL wire codec round-trips configurations to the same store
fingerprint; a LocalTransport agent speaks the protocol end to end;
and fleet campaigns survive lost, partitioned, and slow hosts with
zero lost results — the merged store is cell-for-cell identical to a
single-host run of the same sweep.
"""

import json
import os

import pytest

from repro.sim import SimulationConfig, prewarm
from repro.sim import store as store_mod
from repro.sim.config import PREFETCHERS
from repro.sim.fabric import (
    HostSpec,
    LocalTransport,
    SSHTransport,
    config_from_wire,
    config_to_wire,
    fleet_status,
    job_from_wire,
    job_to_wire,
    parse_hosts,
    run_fleet,
)
from repro.sim.parallel import _job_key
from repro.sim.resilience import (
    HOST_FAULT_KINDS,
    RetryPolicy,
    maybe_inject_fault,
    maybe_inject_host_fault,
    set_fault_injector,
    set_host_fault_injector,
)
from repro.sim.results import SimResult
from repro.sim.runner import clear_cache, simulate
from repro.sim.store import ResultStore, config_fingerprint, list_shards, merge_shards
from repro.workloads import Scale

BASE = SimulationConfig.baseline()
TCP = SimulationConfig.for_prefetcher("tcp-8k")
QUICK = Scale.QUICK.accesses


@pytest.fixture(autouse=True)
def _clean_state():
    clear_cache()
    yield
    clear_cache()
    set_fault_injector(None)
    set_host_fault_injector(None)
    store_mod.clear_active_store()


def _solo_results(store_dir, configs, benchmarks):
    """Single-host reference run of the sweep (fresh caches)."""
    clear_cache()
    with store_mod.use_store(ResultStore(store_dir)):
        report = prewarm(configs, scale=QUICK, benchmarks=benchmarks, jobs=1)
    assert report.ok
    clear_cache()
    return dict(report.completed)


class TestParseHosts:
    def test_local_single(self):
        assert parse_hosts("local") == [HostSpec("local", "", "local")]

    def test_local_count_gets_numbered_ids(self):
        assert [h.id for h in parse_hosts("local:3")] == [
            "local-1",
            "local-2",
            "local-3",
        ]

    def test_ssh_explicit_and_bare(self):
        explicit = parse_hosts("ssh:node-a:2")
        assert [(h.kind, h.address, h.id) for h in explicit] == [
            ("ssh", "node-a", "node-a-1"),
            ("ssh", "node-a", "node-a-2"),
        ]
        assert parse_hosts("node-b") == [HostSpec("ssh", "node-b", "node-b")]

    def test_mixed_separators(self):
        ids = [h.id for h in parse_hosts("local:2, node-a node-b")]
        assert ids == ["local-1", "local-2", "node-a", "node-b"]

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOSTS", "local:2")
        assert len(parse_hosts(None)) == 2
        monkeypatch.delenv("REPRO_HOSTS")
        assert parse_hosts(None) == []

    @pytest.mark.parametrize(
        "bad", ["local:0", "ssh:", "node:x", "a:1:2", "local,local"]
    )
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_hosts(bad)

    def test_transport_commands_target_the_agent_module(self):
        host = parse_hosts("local")[0]
        cmd = LocalTransport().command(host, "/tmp/store")
        assert "repro.sim.fabric" in cmd and "--agent" in cmd
        ssh = SSHTransport(python="python3").command(
            HostSpec("ssh", "node-a", "node-a"), None
        )
        assert ssh[:3] == ["ssh", "-o", "BatchMode=yes"]
        assert "node-a" in ssh and "repro.sim.fabric" in ssh


class TestWireCodec:
    def test_config_round_trip_preserves_fingerprint(self):
        for name in PREFETCHERS:
            config = SimulationConfig.for_prefetcher(name)
            wired = json.loads(json.dumps(config_to_wire(config)))
            rebuilt = config_from_wire(wired)
            assert rebuilt == config
            assert config_fingerprint(rebuilt) == config_fingerprint(config)

    def test_non_default_fields_cross_the_wire(self):
        config = SimulationConfig.ideal_l2().with_hierarchy(mshr_entries=4)
        rebuilt = config_from_wire(config_to_wire(config))
        assert rebuilt.hierarchy.ideal_l2 is True
        assert rebuilt.hierarchy.mshr_entries == 4
        assert rebuilt.label == "ideal-l2"

    def test_job_round_trip(self):
        job = ("swim", TCP, 12345)
        assert job_from_wire(json.loads(json.dumps(job_to_wire(job)))) == job


class TestHostFaultInjection:
    def test_host_kinds_never_reach_job_injection(self, monkeypatch):
        # REPRO_FAULT_KIND=host-lost must not crash ordinary workers:
        # the fleet's local fallback depends on this.
        for kind in HOST_FAULT_KINDS:
            monkeypatch.setenv("REPRO_FAULT_KIND", kind)
            monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
            assert maybe_inject_fault("swim/base@1", 1) is None
            assert maybe_inject_host_fault("local-1", 1) == kind

    def test_deterministic_per_host_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KIND", "host-lost")
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.5")
        first = [maybe_inject_host_fault("a", d) for d in range(1, 20)]
        again = [maybe_inject_host_fault("a", d) for d in range(1, 20)]
        other = [maybe_inject_host_fault("b", d) for d in range(1, 20)]
        assert first == again
        assert first != other  # keyed by host, not just dispatch

    def test_injector_hook_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KIND", "host-lost")
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        set_host_fault_injector(lambda host, dispatch: None)
        assert maybe_inject_host_fault("a", 1) is None


class TestAgentProtocol:
    def test_agent_runs_a_job_and_shards_the_result(self, tmp_path):
        host = parse_hosts("local")[0]
        proc = LocalTransport().launch(host, str(tmp_path))
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready[0] == "ready" and ready[1]["host"] == "local"
            job = ("swim", BASE, QUICK)
            proc.stdin.write(
                json.dumps(["job", _job_key(job), job_to_wire(job), 1]) + "\n"
            )
            proc.stdin.flush()
            saw_heartbeat = False
            while True:
                message = json.loads(proc.stdout.readline())
                if message[0] == "hb":
                    saw_heartbeat = True
                    continue
                break
            assert message[0] == "ok" and message[1] == _job_key(job)
            assert saw_heartbeat
            result = SimResult.from_dict(message[2])
            assert result == simulate("swim", BASE, QUICK, use_cache=False)
            # The shard holds the result too: coordinator-crash safety.
            shard = ResultStore(tmp_path, results_name="shard-local.jsonl")
            assert shard.get("swim", QUICK, BASE) == result
            proc.stdin.write(json.dumps(["stop"]) + "\n")
            proc.stdin.flush()
            assert proc.wait(timeout=10) == 0
        finally:
            proc.kill()
            proc.wait()

    def test_agent_reports_bad_payload_as_err(self, tmp_path):
        proc = LocalTransport().launch(parse_hosts("local")[0], None)
        try:
            json.loads(proc.stdout.readline())  # ready
            proc.stdin.write(json.dumps(["job", "k", {"nope": 1}, 1]) + "\n")
            proc.stdin.flush()
            message = json.loads(proc.stdout.readline())
            assert message[0] == "err" and message[1] == "k"
            proc.stdin.close()
            assert proc.wait(timeout=10) == 0
        finally:
            proc.kill()
            proc.wait()


class TestFleetCampaigns:
    CONFIGS = [BASE, TCP]
    BENCH = ["swim", "mcf"]

    def test_two_host_campaign_matches_single_host(self, tmp_path):
        solo = _solo_results(tmp_path / "solo", self.CONFIGS, self.BENCH)
        store = ResultStore(tmp_path / "fleet")
        with store_mod.use_store(store):
            report = prewarm(
                self.CONFIGS, scale=QUICK, benchmarks=self.BENCH,
                jobs=1, hosts="local:2",
            )
        assert report.ok and report.executed == len(solo)
        assert sum(report.per_host.values()) == len(solo)
        for key, result in report.completed.items():
            assert result == solo[key]
        verdict = store.verify()
        assert verdict["live"] == len(solo) and not verdict["bad"]
        assert list_shards(store) == []  # shards merged and removed

    def test_acceptance_host_lost_loses_nothing(self, tmp_path, monkeypatch):
        """ISSUE 7 acceptance: 2 hosts + REPRO_FAULT_KIND=host-lost →
        campaign completes, merged store cell-for-cell identical to a
        single-host run, store verify clean."""
        solo = _solo_results(tmp_path / "solo", self.CONFIGS, self.BENCH)
        monkeypatch.setenv("REPRO_FAULT_KIND", "host-lost")
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.4")
        store = ResultStore(tmp_path / "fleet")
        with store_mod.use_store(store):
            report = prewarm(
                self.CONFIGS, scale=QUICK, benchmarks=self.BENCH,
                jobs=1, hosts="local:2",
            )
        assert report.ok and report.executed == len(solo)
        assert report.hosts_lost >= 1
        for key, result in report.completed.items():
            assert result == solo[key]
        verdict = store.verify()
        assert verdict["live"] == len(solo) and not verdict["bad"]

    def test_survivor_absorbs_a_lost_hosts_work(self, tmp_path):
        solo = _solo_results(tmp_path / "solo", self.CONFIGS, self.BENCH)
        set_host_fault_injector(
            lambda host, dispatch: "host-lost"
            if host == "local-1" and dispatch == 2
            else None
        )
        store = ResultStore(tmp_path / "fleet")
        with store_mod.use_store(store):
            report = prewarm(
                self.CONFIGS, scale=QUICK, benchmarks=self.BENCH,
                jobs=1, hosts="local:2",
            )
        assert report.ok and report.executed == len(solo)
        assert report.hosts_lost == 1
        assert report.fleet_degraded is None  # the fleet itself finished
        assert report.reassigned >= 1
        assert report.per_host.get("local-2", 0) >= 2
        for key, result in report.completed.items():
            assert result == solo[key]

    def test_all_hosts_lost_degrades_but_completes(self, tmp_path, monkeypatch):
        solo = _solo_results(tmp_path / "solo", self.CONFIGS, self.BENCH)
        monkeypatch.setenv("REPRO_FAULT_KIND", "host-lost")
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        store = ResultStore(tmp_path / "fleet")
        with store_mod.use_store(store):
            report = prewarm(
                self.CONFIGS, scale=QUICK, benchmarks=self.BENCH,
                jobs=1, hosts="local:2",
            )
        assert report.ok and report.executed == len(solo)
        assert report.hosts_lost == 2
        assert report.fleet_degraded is not None  # the nonzero-exit signal
        for key, result in report.completed.items():
            assert result == solo[key]

    def test_partitioned_host_is_reclaimed(self, tmp_path):
        set_host_fault_injector(
            lambda host, dispatch: "host-partition"
            if host == "local-1" and dispatch == 1
            else None
        )
        store = ResultStore(tmp_path / "fleet")
        with store_mod.use_store(store):
            report = prewarm(
                [BASE], scale=QUICK, benchmarks=self.BENCH,
                jobs=1, hosts="local:2", stall_timeout=2.0,
            )
        assert report.ok and report.executed == 2
        assert report.hosts_lost == 1  # the muted host stalled out

    def test_slow_host_survives(self, tmp_path):
        set_host_fault_injector(
            lambda host, dispatch: "host-slow" if dispatch == 1 else None
        )
        store = ResultStore(tmp_path / "fleet")
        with store_mod.use_store(store):
            report = prewarm(
                [BASE], scale=QUICK, benchmarks=self.BENCH,
                jobs=1, hosts="local:2", stall_timeout=10.0,
            )
        assert report.ok and report.executed == 2
        assert report.hosts_lost == 0  # slow is not dead

    def test_run_fleet_without_fallback_fails_leftovers(self):
        report = run_fleet(
            [("swim", BASE, QUICK)],
            hosts=[],  # nothing launches
            key=_job_key,
            policy=RetryPolicy(retries=0),
        )
        assert report.failed == 1
        assert report.fleet_degraded is not None


class TestShardMerging:
    def _result(self, name="swim"):
        return simulate(name, BASE, QUICK, use_cache=False)

    def test_merge_shards_dedupes_and_removes(self, tmp_path):
        result = self._result()
        store = ResultStore(tmp_path)
        store.put("swim", QUICK, BASE, result)
        for host in ("a", "b"):
            shard = ResultStore(tmp_path, results_name=f"shard-{host}.jsonl")
            shard.put("swim", QUICK, BASE, result)  # duplicate of main
            shard.put("mcf", QUICK, BASE, self._result("mcf"))
        merged, adopted = merge_shards(store)
        assert merged == 2
        assert adopted == 1  # mcf once; swim and the second mcf deduped
        assert list_shards(store) == []
        assert len(store) == 2
        verdict = store.verify()
        assert verdict["live"] == 2 and not verdict["bad"]

    def test_merge_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        shard = ResultStore(tmp_path, results_name="shard-a.jsonl")
        shard.put("swim", QUICK, BASE, self._result())
        assert merge_shards(store) == (1, 1)
        assert merge_shards(store) == (0, 0)  # nothing left to do

    def test_prewarm_resumes_from_orphan_shards(self, tmp_path):
        # A fleet coordinator died after its hosts finished some jobs:
        # the shards alone must make those jobs resume as skipped.
        result = self._result()
        shard = ResultStore(tmp_path, results_name="shard-node-a.jsonl")
        shard.put("swim", QUICK, BASE, result)
        clear_cache()
        store = ResultStore(tmp_path)
        with store_mod.use_store(store):
            report = prewarm([BASE], scale=QUICK, benchmarks=["swim"], jobs=1)
        assert report.skipped == 1 and report.executed == 0
        assert store.get("swim", QUICK, BASE) == result

    def test_fleet_status_lists_shards(self, tmp_path):
        shard = ResultStore(tmp_path, results_name="shard-node-a.jsonl")
        shard.put("swim", QUICK, BASE, self._result())
        status = fleet_status(tmp_path)
        assert status["main_live"] == 0
        assert [s["host"] for s in status["shards"]] == ["node-a"]
        assert status["shards"][0]["live"] == 1


class TestFallbackProvenance:
    """ISSUE 10 satellite: ``backend_fallback`` provenance must survive
    every fleet path a result can take — the agent's ``ok`` frame, the
    host store shard, the shard merge into the main log, and
    ``merge_from``'s re-frame fallback (which used to emit records
    without a ``config_label``)."""

    def test_fallback_crosses_the_agent_ok_frame_and_shard(self, tmp_path):
        from repro.multicore import mix_config

        config = mix_config(("swim",), prefetcher="none")
        host = parse_hosts("local")[0]
        proc = LocalTransport().launch(host, str(tmp_path))
        try:
            json.loads(proc.stdout.readline())  # ready
            job = ("swim", config, QUICK)
            proc.stdin.write(
                json.dumps(["job", _job_key(job), job_to_wire(job), 1]) + "\n"
            )
            proc.stdin.flush()
            while True:
                message = json.loads(proc.stdout.readline())
                if message[0] != "hb":
                    break
            assert message[0] == "ok"
            result = SimResult.from_dict(message[2])
            assert result.backend_fallback == "multicore"
            shard = ResultStore(tmp_path, results_name="shard-local.jsonl")
            stored = shard.get("swim", QUICK, config)
            assert stored is not None
            assert stored.backend_fallback == "multicore"
            proc.stdin.write(json.dumps(["stop"]) + "\n")
            proc.stdin.flush()
            assert proc.wait(timeout=10) == 0
        finally:
            proc.kill()
            proc.wait()

    def test_fleet_mix_campaign_preserves_fallback(self, tmp_path):
        from repro.multicore import mix_config

        config = mix_config(("gzip", "swim"), prefetcher="none")
        store = ResultStore(tmp_path)
        with store_mod.use_store(store):
            report = prewarm([config], scale=QUICK, jobs=1, hosts="local:2")
        assert report.ok
        for result in report.completed.values():
            assert result.backend_fallback == "multicore"
        reloaded = ResultStore(tmp_path)  # fresh scan of the merged log
        stored = reloaded.get("gzip+swim", QUICK, config)
        assert stored.backend_fallback == "multicore"

    def test_merge_from_reframe_keeps_fallback_and_config_label(
        self, tmp_path
    ):
        from repro.multicore import mix_config

        config = mix_config(("swim",), prefetcher="none")
        result = simulate("swim", config, QUICK, use_cache=False)
        assert result.backend_fallback == "multicore"
        shard = ResultStore(tmp_path / "shard")
        shard.put("swim", QUICK, config, result)
        # Drop the shard's cached frames so merge_from must re-frame
        # each record from the decoded result (the path that used to
        # lose the record-level config_label).
        shard._latest.clear()
        main = ResultStore(tmp_path / "main")
        assert main.merge_from(shard) == 1
        records = [
            json.loads(line)
            for line in main.path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        assert records[-1]["config_label"] == config.resolved_label()
        reloaded = ResultStore(tmp_path / "main")
        stored = reloaded.get("swim", QUICK, config)
        assert stored.backend_fallback == "multicore"
        assert stored.config_label == config.resolved_label()
        assert not reloaded.verify()["bad"]
