"""Differential and property tests for the multicore mix front end.

The multicore engine is new simulated behavior with no external
oracle, so its correctness case is differential: a 1-core mix must be
*bit-identical* to the single-core path for every registered
prefetcher (same scheduler, same hierarchy maths, zero relocation on
core 0), determinism and core-permutation equivariance must hold
exactly, and randomized small mixes must satisfy the per-core
conservation laws and shared-L2 occupancy invariants under the full
sanitizer tier.  The store/campaign integration test proves mix cells
checkpoint and resume across a kill -9 with nothing lost or
duplicated.
"""

import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.multicore import (
    MIXES,
    MixResult,
    MixSpec,
    canonical_mix_name,
    mix_config,
    resolve_mix,
)
from repro.sim import SimulationConfig, prewarm, simulate
from repro.sim import store as store_mod
from repro.sim.config import PREFETCHERS
from repro.sim.results import SimResult
from repro.sim.runner import clear_cache
from repro.sim.store import ResultStore, config_fingerprint
from repro.workloads import BENCHMARK_ORDER, Scale, Trace, generate

#: small raw scales keep the 26-cell differential sweep fast; bit
#: identity does not need long traces.
SMALL = 6000
TINY = 3000


@pytest.fixture(autouse=True)
def _clean_state():
    clear_cache()
    yield
    clear_cache()
    store_mod.clear_active_store()


class TestDifferentialOracle:
    @pytest.mark.parametrize("prefetcher", sorted(PREFETCHERS))
    def test_one_core_mix_bit_identical_to_single_core(self, prefetcher):
        """ISSUE 10 acceptance: N=1 removes every multicore ingredient
        (no relocation on core 0, one-runner scheduler, sole owner of
        the shared L2), so the mix path must reproduce the single-core
        result exactly — cycles and the full stats dict."""
        solo = simulate(
            "swim", SimulationConfig.for_prefetcher(prefetcher), SMALL,
            use_cache=False,
        )
        mix = simulate(
            "swim", mix_config(("swim",), prefetcher=prefetcher), SMALL,
            use_cache=False,
        )
        assert isinstance(mix, MixResult)
        assert mix.backend_fallback == "multicore"
        core = mix.per_core[0]
        solo_dict = solo.to_dict()
        core_dict = core.to_dict()
        assert core_dict["core"] == solo_dict["core"]  # cycles included
        assert core_dict["memory"] == solo_dict["memory"]
        assert core.prefetcher_name == solo.prefetcher_name
        assert core.prefetcher_storage_bytes == solo.prefetcher_storage_bytes
        assert core.prefetcher_predictions == solo.prefetcher_predictions
        assert core.ipc == solo.ipc

    def test_identical_cores_have_identical_stats_without_prefetch(self):
        """Two copies of the same benchmark on a no-prefetch machine
        see the same demand stream and a capacity-symmetric L2, so the
        full per-core stats dicts must be identical (cycles may skew
        marginally from bus serialization order)."""
        result = simulate(
            "swim+swim", mix_config(("swim", "swim")), SMALL, use_cache=False
        )
        first, second = (core.to_dict() for core in result.per_core)
        assert first["memory"] == second["memory"]
        assert first["core"]["instructions"] == second["core"]["instructions"]
        assert first["core"]["accesses"] == second["core"]["accesses"]
        c0, c1 = (core.core.cycles for core in result.per_core)
        assert c1 == pytest.approx(c0, rel=5e-3)

    def test_identical_cores_are_demand_symmetric_with_prefetch(self):
        """With a prefetcher the cores' *demand-side* stats stay
        identical (private L1s, same stream); timing-coupled prefetch
        counters may differ because bus serialization shifts which
        core's prefetches land first, but each core's request-side
        prefetch taxonomy must still partition exactly."""
        result = simulate(
            "swim+swim",
            mix_config(("swim", "swim"), prefetcher="tcp-8k"),
            SMALL,
            use_cache=False,
        )
        first, second = (core.memory for core in result.per_core)
        for field in (
            "demand_accesses", "loads", "stores", "l1_hits", "l1_misses",
            "ifetch_accesses", "ifetch_misses",
        ):
            assert getattr(first, field) == getattr(second, field), field
        for stats in (first, second):
            assert stats.prefetches_requested == (
                stats.prefetches_issued
                + stats.prefetch_redundant
                + stats.prefetch_dropped_queue
                + stats.prefetch_dropped_busy
            )
        c0, c1 = (core.core.cycles for core in result.per_core)
        assert c1 == pytest.approx(c0, rel=1e-2)


class TestDeterminismAndPermutation:
    def test_same_mix_twice_is_identical(self):
        config = mix_config(("gzip", "swim"), prefetcher="tcp-8k")
        first = simulate("gzip+swim", config, SMALL, use_cache=False)
        second = simulate("gzip+swim", config, SMALL, use_cache=False)
        assert first.to_dict() == second.to_dict()

    def test_core_permutation_permutes_per_core_stats(self):
        """Swapping which core a benchmark runs on must swap its stats
        verbatim (tie-breaks depend on the stream, not the slot), so
        there is no hidden order dependence in the scheduler."""
        forward = simulate(
            "gzip+swim", mix_config(("gzip", "swim")), SMALL, use_cache=False
        )
        backward = simulate(
            "swim+gzip", mix_config(("swim", "gzip")), SMALL, use_cache=False
        )
        by_bench_fwd = {c.workload: c.to_dict() for c in forward.per_core}
        by_bench_bwd = {c.workload: c.to_dict() for c in backward.per_core}
        for name in ("gzip", "swim"):
            fwd, bwd = by_bench_fwd[name], by_bench_bwd[name]
            fwd.pop("core_id"), bwd.pop("core_id")
            assert fwd == bwd

    def test_shared_pht_mode_runs_and_is_a_distinct_cell(self):
        config = mix_config(("gzip", "swim"), prefetcher="tcp-8k",
                            shared_pht=True)
        result = simulate("gzip+swim", config, SMALL, use_cache=False)
        result.validate()
        assert result.shared_pht
        private = mix_config(("gzip", "swim"), prefetcher="tcp-8k")
        assert config_fingerprint(config) != config_fingerprint(private)


class TestMixProperties:
    @given(
        benchmarks=st.lists(
            st.sampled_from(["swim", "gzip", "mcf", "gcc"]),
            min_size=1, max_size=3,
        ),
        prefetcher=st.sampled_from(["none", "stride", "tcp-8k"]),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_small_mixes_conserve_under_full_sanitize(
        self, benchmarks, prefetcher
    ):
        """Fuzzed mixes under the full sanitizer tier (the config-level
        equivalent of REPRO_SANITIZE=full): the run itself asserts the
        shared-L2 occupancy/ownership invariants at every mark, and the
        result must satisfy the per-core conservation laws."""
        config = mix_config(
            tuple(benchmarks), prefetcher=prefetcher, sanitize="full"
        )
        result = simulate(
            canonical_mix_name(benchmarks), config, TINY, use_cache=False
        )
        result.validate()
        share_total = 0.0
        for core in result.per_core:
            stats = core.memory
            assert stats.demand_accesses == stats.l1_hits + stats.l1_misses
            assert stats.l2_demand_accesses == stats.l1_misses
            assert stats.l2_demand_accesses == (
                stats.l2_demand_hits + stats.l2_demand_misses
            )
            # The request-side taxonomy is counted atomically, so it
            # partitions exactly even across the warmup snapshot (the
            # issue-side one does not: a warmup-issued prefetch can
            # become useful inside the measured window).
            assert stats.prefetches_requested == (
                stats.prefetches_issued
                + stats.prefetch_redundant
                + stats.prefetch_dropped_queue
                + stats.prefetch_dropped_busy
            )
            assert 0.0 <= core.attribution.l2_occupancy_share <= 1.0
            assert core.attribution.bus_stall_cycles >= 0.0
            share_total += core.attribution.l2_occupancy_share
        assert share_total <= 1.0 + 1e-9


class TestMixSpecsAndFingerprints:
    def test_named_mixes_cover_the_suite_in_mpki_order(self):
        assert sorted(MIXES) == [f"mix{i}" for i in range(1, 8)]
        covered = set()
        for spec in MIXES.values():
            assert spec.cores == 4
            covered.update(spec.benchmarks)
        assert covered == set(BENCHMARK_ORDER)
        assert MIXES["mix1"].benchmarks == tuple(BENCHMARK_ORDER[:4])
        assert MIXES["mix7"].benchmarks == tuple(BENCHMARK_ORDER[-4:])

    def test_resolve_mix_forms(self):
        assert resolve_mix("mix2") is MIXES["mix2"]
        assert resolve_mix("swim+mcf").benchmarks == ("swim", "mcf")
        assert resolve_mix("swim, mcf").benchmarks == ("swim", "mcf")
        assert resolve_mix(["swim"]).benchmarks == ("swim",)
        spec = MixSpec("custom", ("gzip", "swim"))
        assert resolve_mix(spec) is spec
        with pytest.raises(KeyError):
            resolve_mix("mix9")
        with pytest.raises(KeyError):
            MixSpec("bad", ("swim", "nosuch"))

    def test_single_core_fingerprints_are_unchanged(self):
        """The mix dimension must not shift any pre-existing cell key:
        the store would otherwise silently orphan every checkpoint."""
        assert (
            config_fingerprint(SimulationConfig.baseline())
            == "f1c38689d0e5ec14"
        )

    def test_mix_fingerprints_are_stable_and_distinct(self):
        mix = mix_config("mix2", prefetcher="tcp-8k")
        solo = SimulationConfig.for_prefetcher("tcp-8k")
        assert config_fingerprint(mix) == "0ac5436cdeac0f89"
        assert config_fingerprint(mix) != config_fingerprint(solo)
        orders = {
            config_fingerprint(mix_config(("gzip", "swim"))),
            config_fingerprint(mix_config(("swim", "gzip"))),
        }
        assert len(orders) == 2  # core slots are part of the experiment

    def test_mix_workload_name_must_match_the_config(self):
        config = mix_config(("gzip", "swim"))
        with pytest.raises(ValueError, match="does not match"):
            simulate("swim+gzip", config, SMALL, use_cache=False)
        with pytest.raises(ValueError, match="canonical mix name"):
            simulate(generate("swim", TINY), config, use_cache=False)

    def test_mix_result_round_trips_through_the_generic_decoder(self):
        result = simulate(
            "gzip+swim", mix_config(("gzip", "swim")), SMALL, use_cache=False
        )
        decoded = SimResult.from_dict(result.to_dict())
        assert isinstance(decoded, MixResult)
        assert decoded.to_dict() == result.to_dict()
        assert decoded.backend_fallback == "multicore"


_CAMPAIGN_SCRIPT = """\
import sys
from repro.multicore import mix_config
from repro.sim import prewarm
from repro.sim import store as store_mod
from repro.sim.store import ResultStore

store_dir, accesses = sys.argv[1], int(sys.argv[2])
configs = [
    mix_config(("gzip", "swim"), prefetcher=p)
    for p in ("none", "nextline", "stride", "tcp-8k")
]

def progress(done, total, key, status):
    print(f"[{done}/{total}] {key}: {status}", flush=True)

with store_mod.use_store(ResultStore(store_dir)):
    # Fleet mode: each agent checkpoints every finished cell to its own
    # store shard *before* reporting ok, so a kill -9 of the whole
    # process group leaves the finished work durable on disk.
    report = prewarm(
        configs, scale=accesses, jobs=1, hosts="local:2", progress=progress
    )
print("campaign-finished", flush=True)
"""


class TestMixCampaignResume:
    def test_kill_9_mid_campaign_loses_and_duplicates_nothing(self, tmp_path):
        """ISSUE 10 satellite: a mix campaign killed with SIGKILL
        mid-flight resumes from its checkpoints — every cell finished
        before the kill is skipped on resume, the rest re-run, and the
        final store holds exactly one live record per mix cell."""
        store_dir = tmp_path / "store"
        configs = [
            mix_config(("gzip", "swim"), prefetcher=p)
            for p in ("none", "nextline", "stride", "tcp-8k")
        ]
        env = dict(
            os.environ,
            PYTHONPATH=os.path.join(
                os.path.dirname(__file__), os.pardir, "src"
            ),
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", _CAMPAIGN_SCRIPT, str(store_dir),
             str(Scale.QUICK.accesses)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line:
                    raise AssertionError(
                        "campaign exited before it could be killed"
                    )
                if ": ok" in line:
                    break
            else:
                raise AssertionError("campaign made no progress in time")
            os.killpg(proc.pid, signal.SIGKILL)
            proc.stdout.read()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait()

        # Fold the orphaned host shards (the coordinator died before
        # merging) and count the unique cells that survived the kill.
        crashed = ResultStore(store_dir)
        store_mod.merge_shards(crashed)
        checkpointed = crashed.verify()["live"]
        assert checkpointed >= 1

        clear_cache()
        with store_mod.use_store(ResultStore(store_dir)):
            report = prewarm(configs, scale=Scale.QUICK, jobs=1)
        assert report.ok
        assert report.skipped == checkpointed  # nothing finished was lost
        assert report.executed == len(configs) - checkpointed

        store = ResultStore(store_dir)
        verdict = store.verify()
        assert not verdict["bad"]
        assert verdict["live"] == len(configs)  # no duplicated cells
        for config in configs:
            result = store.get("gzip+swim", Scale.QUICK.accesses, config)
            assert isinstance(result, MixResult)
            assert result.backend_fallback == "multicore"
            result.validate()
