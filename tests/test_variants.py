"""Tests for the Section 6 TCP variants (multi-target, stride-filtered)."""

import pytest

from repro.core import MultiTargetTCP, StrideFilteredTCP
from repro.core.pht import PHTConfig
from repro.core.tcp import TCPConfig
from repro.prefetchers.base import MissEvent


def miss(index, tag, now=0.0):
    return MissEvent(index, tag, (tag << 10) | index, 0x1000, False, now)


def small_config():
    return TCPConfig(tht_rows=1024, pht=PHTConfig(sets=64, ways=4))


class TestMultiTarget:
    def test_rejects_single_target(self):
        with pytest.raises(ValueError):
            MultiTargetTCP(small_config(), targets=1)

    def test_widens_pht(self):
        prefetcher = MultiTargetTCP(small_config(), targets=3)
        assert prefetcher.pht.config.targets == 3

    def test_prefetches_multiple_targets(self):
        prefetcher = MultiTargetTCP(small_config(), targets=2)
        # teach two different successors of the history (A, B)
        for tag in (1, 2, 3, 1, 2, 4, 1, 2):
            requests = prefetcher.observe_miss(miss(0, tag))
        blocks = sorted(r.block for r in requests)
        assert blocks == [(3 << 10), (4 << 10)]

    def test_budget_grows_with_targets(self):
        single = MultiTargetTCP(small_config(), targets=2).storage_bytes()
        triple = MultiTargetTCP(small_config(), targets=3).storage_bytes()
        assert triple > single


class TestStrideFiltered:
    def test_strided_sequence_bypasses_pht(self):
        prefetcher = StrideFilteredTCP(small_config())
        requests = []
        for tag in (10, 12):  # stride not yet confirmed: PHT path
            prefetcher.observe_miss(miss(7, tag))
        occupancy_before_stride = prefetcher.pht.occupancy()
        for tag in (14, 16, 18, 20):
            requests = prefetcher.observe_miss(miss(7, tag))
        # detector confirmed stride 2: predicts 22 without the PHT
        assert [r.block for r in requests] == [(22 << 10) | 7]
        assert prefetcher.stride_predictions >= 1
        # confirmed-stride misses never touch the PHT
        assert prefetcher.pht.occupancy() == occupancy_before_stride

    def test_irregular_sequence_falls_back_to_pht(self):
        prefetcher = StrideFilteredTCP(small_config())
        pattern = (5, 90, 17)
        requests = []
        for _ in range(3):
            for tag in pattern:
                requests = prefetcher.observe_miss(miss(3, tag))
        assert requests, "PHT path should predict the cyclic pattern"
        assert prefetcher.stride_predictions == 0

    def test_negative_tag_prediction_suppressed(self):
        prefetcher = StrideFilteredTCP(small_config())
        requests = []
        for tag in (30, 20, 10, 0):
            requests = prefetcher.observe_miss(miss(7, tag))
        # next predicted tag would be -10: no request issued
        assert requests == []

    def test_budget_includes_detector(self):
        prefetcher = StrideFilteredTCP(small_config())
        base = prefetcher.tht.storage_bytes() + prefetcher.pht.storage_bytes()
        assert prefetcher.storage_bytes() == base + 1024 * 5

    def test_reset(self):
        prefetcher = StrideFilteredTCP(small_config())
        for tag in (10, 12, 14, 16):
            prefetcher.observe_miss(miss(7, tag))
        prefetcher.reset()
        assert prefetcher.stride_predictions == 0
        assert prefetcher.observe_miss(miss(7, 18)) == []


class TestConfidenceFiltered:
    def _tcp(self, threshold=2):
        from repro.core import ConfidenceFilteredTCP
        return ConfidenceFilteredTCP(small_config(), threshold=threshold)

    def test_invalid_threshold(self):
        from repro.core import ConfidenceFilteredTCP
        with pytest.raises(ValueError):
            ConfidenceFilteredTCP(small_config(), threshold=0)
        with pytest.raises(ValueError):
            ConfidenceFilteredTCP(small_config(), threshold=5, maximum=3)

    def test_suppresses_unconfirmed_predictions(self):
        prefetcher = self._tcp(threshold=2)
        # two laps of A B C: entries exist but confidence not yet earned
        for _ in range(2):
            for tag in (1, 2, 3):
                requests = prefetcher.observe_miss(miss(0, tag))
        assert requests == []
        assert prefetcher.suppressed > 0

    def test_confirmed_pattern_eventually_issues(self):
        prefetcher = self._tcp(threshold=2)
        requests = []
        for _ in range(6):
            for tag in (1, 2, 3):
                new = prefetcher.observe_miss(miss(0, tag))
                requests = new if new else requests
        assert requests, "stable pattern must earn confidence"

    def test_unstable_pattern_stays_suppressed(self):
        prefetcher = self._tcp(threshold=2)
        issued_after_unstable_history = []
        # successor of (1, 2) alternates between 3 and 4 forever; the
        # other sub-patterns (e.g. (3,1)->2) are stable and may issue.
        for lap in range(8):
            for tag in (1, 2, 3 if lap % 2 == 0 else 4):
                requests = prefetcher.observe_miss(miss(0, tag))
                if tag == 2:
                    issued_after_unstable_history.extend(requests)
        assert issued_after_unstable_history == []

    def test_budget_includes_counters(self):
        from repro.core import ConfidenceFilteredTCP, TagCorrelatingPrefetcher
        plain = TagCorrelatingPrefetcher(small_config()).storage_bytes()
        filtered = ConfidenceFilteredTCP(small_config()).storage_bytes()
        assert filtered == plain + (64 * 4 * 2 + 7) // 8

    def test_reset(self):
        prefetcher = self._tcp()
        for _ in range(6):
            for tag in (1, 2, 3):
                prefetcher.observe_miss(miss(0, tag))
        prefetcher.reset()
        assert prefetcher.suppressed == 0
        assert prefetcher._confidence == {}


class TestLookahead:
    def _tcp(self, degree=2):
        from repro.core import LookaheadTCP
        return LookaheadTCP(small_config(), degree=degree)

    def test_invalid_degree(self):
        from repro.core import LookaheadTCP
        with pytest.raises(ValueError):
            LookaheadTCP(small_config(), degree=0)

    def test_chains_predictions(self):
        prefetcher = self._tcp(degree=3)
        requests = []
        for _ in range(3):
            for tag in (1, 2, 3, 4, 5):
                requests = prefetcher.observe_miss(miss(0, tag))
        # after the final 5, the chain predicts 1, 2, 3
        assert [r.block >> 10 for r in requests] == [1, 2, 3]

    def test_chain_stops_at_unknown_link(self):
        prefetcher = self._tcp(degree=4)
        # teach only one transition depth by using a 2-long history run
        for tag in (1, 2, 3, 1, 2):
            requests = prefetcher.observe_miss(miss(0, tag))
        # (1,2)->3 known; (2,3)->? known too (learned (2,3)->1 on lap 2)
        assert 1 <= len(requests) <= 4

    def test_degree_one_matches_base(self):
        from repro.core import TagCorrelatingPrefetcher
        look = self._tcp(degree=1)
        base = TagCorrelatingPrefetcher(small_config())
        for tag in (1, 2, 3, 1, 2, 3, 1, 2):
            a = look.observe_miss(miss(0, tag))
            b = base.observe_miss(miss(0, tag))
        assert [r.block for r in a] == [r.block for r in b]

    def test_self_loop_terminates(self):
        prefetcher = self._tcp(degree=4)
        for _ in range(8):
            requests = prefetcher.observe_miss(miss(0, 7))
        # constant tag: the chain closes on itself immediately
        assert len(requests) <= 1
