"""Cache geometry and address decomposition.

The whole paper revolves around the split of a memory address into
``tag | index | offset``: the Tag History Table is indexed by the miss
*index* and stores miss *tags*, and a predicted tag recombined with the
miss index reconstructs a full prefetch address.  This module owns that
arithmetic so every component (caches, prefetchers, analysis passes)
splits addresses identically.

Performance note: ``sets`` / ``offset_bits`` / ``index_bits`` /
``index_mask`` / ``tag_shift`` are computed **once** in
``__post_init__`` and stored as plain instance attributes.  The seed
tree derived them as properties calling :func:`log2_exact` on every
read, which put ~200k ``log2_exact`` calls on the hot path of a single
simulation run.  The derived attributes are not dataclass fields, so
equality, hashing, and ``repr`` still depend only on the three
constructor parameters (geometries are used as cache keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.bitops import index_geometry, log2_exact

__all__ = ["CacheGeometry", "LevelMap"]


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level.

    Parameters
    ----------
    size_bytes:
        Total data capacity.  Must be ``ways * block_bytes * 2**k``.
    ways:
        Associativity; 1 means direct-mapped.
    block_bytes:
        Cache line size in bytes (power of two).

    Derived (precomputed, read-only) attributes
    -------------------------------------------
    sets:
        Number of cache sets.
    offset_bits:
        Number of block-offset bits.
    index_bits:
        Number of set-index bits.
    index_mask:
        ``2**index_bits - 1`` — mask selecting the index from a block
        address number.
    tag_shift:
        ``offset_bits + index_bits`` — shift extracting the tag from a
        byte address.
    """

    size_bytes: int
    ways: int
    block_bytes: int

    def __post_init__(self) -> None:
        if self.ways <= 0:
            raise ValueError(f"associativity must be positive, got {self.ways}")
        offset_bits = log2_exact(self.block_bytes)
        if self.size_bytes % (self.ways * self.block_bytes) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} is not a multiple of "
                f"ways*block ({self.ways}*{self.block_bytes})"
            )
        sets = self.size_bytes // (self.ways * self.block_bytes)
        index_bits, index_mask = index_geometry(sets)
        object.__setattr__(self, "sets", sets)
        object.__setattr__(self, "offset_bits", offset_bits)
        object.__setattr__(self, "index_bits", index_bits)
        object.__setattr__(self, "index_mask", index_mask)
        object.__setattr__(self, "tag_shift", offset_bits + index_bits)

    def block_address(self, addr: int) -> int:
        """Return the block-aligned address number (addr without offset)."""
        return addr >> self.offset_bits

    def split(self, addr: int) -> Tuple[int, int]:
        """Split a byte address into ``(tag, index)``."""
        block = addr >> self.offset_bits
        return block >> self.index_bits, block & self.index_mask

    def tag_of(self, addr: int) -> int:
        """Return the tag of a byte address."""
        return addr >> self.tag_shift

    def index_of(self, addr: int) -> int:
        """Return the set index of a byte address."""
        return (addr >> self.offset_bits) & self.index_mask

    def compose(self, tag: int, index: int) -> int:
        """Rebuild a block-aligned byte address from ``(tag, index)``.

        This is the final step of the TCP lookup (Section 4 of the
        paper): the predicted next tag, combined with the current miss
        index, forms a complete cache-line address for the prefetch.
        """
        return ((tag << self.index_bits) | (index & self.index_mask)) << self.offset_bits

    def split_block(self, block: int) -> Tuple[int, int]:
        """Split a block address number into ``(tag, index)``."""
        return block >> self.index_bits, block & self.index_mask

    def compose_block(self, tag: int, index: int) -> int:
        """Rebuild a block address number from ``(tag, index)``."""
        return (tag << self.index_bits) | (index & self.index_mask)

    def decompose_array(self, addrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised split of a whole address trace.

        Returns ``(blocks, indices, tags)`` as int64 arrays.  The hot
        simulation loop precomputes these once per run instead of
        re-splitting every address in Python.
        """
        blocks = (addrs >> np.uint64(self.offset_bits)).astype(np.int64)
        indices = blocks & np.int64(self.index_mask)
        tags = blocks >> np.int64(self.index_bits)
        return blocks, indices, tags

    def describe(self) -> str:
        """Human-readable one-line geometry summary."""
        assoc = "direct-mapped" if self.ways == 1 else f"{self.ways}-way"
        return (
            f"{self.size_bytes // 1024}KB, {assoc}, {self.block_bytes}B blocks, "
            f"{self.sets} sets"
        )


class LevelMap:
    """Precomputed mapping between two cache levels' block numbers.

    One L1 block lives inside one (larger or equal) L2 block; every
    place the simulator converts an L1 block number to the lower
    level's ``(tag, index)`` — the demand path, the prefetch path, the
    promotion path, the sanitizer's duplicate scan — goes through the
    same three precomputed constants instead of re-deriving shifts from
    both geometries.
    """

    __slots__ = ("upper", "lower", "shift", "index_bits", "index_mask")

    def __init__(self, upper: CacheGeometry, lower: CacheGeometry) -> None:
        if lower.block_bytes < upper.block_bytes:
            raise ValueError(
                "lower level must have blocks at least as large as the upper "
                f"({lower.block_bytes}B < {upper.block_bytes}B)"
            )
        self.upper = upper
        self.lower = lower
        #: right-shift converting an upper block number to a lower one.
        self.shift = lower.offset_bits - upper.offset_bits
        self.index_bits = lower.index_bits
        self.index_mask = lower.index_mask

    def lower_block(self, upper_block: int) -> int:
        """Map an upper-level block number to the lower level's."""
        return upper_block >> self.shift

    def split(self, upper_block: int) -> Tuple[int, int]:
        """Split an upper-level block number into the lower level's
        ``(tag, index)``."""
        block = upper_block >> self.shift
        return block >> self.index_bits, block & self.index_mask
