"""repro.obs — the observability layer: metrics, span tracing, profiling.

Three thin, independently usable pieces threaded through the existing
layers (engine probes, memory hierarchy, campaign supervisor):

* :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram`` and
  the process-level :class:`MetricsRegistry`; near-zero cost when
  disabled (one global read per event batch, one integer compare per
  access via the probe marks).
* :mod:`repro.obs.spans` — ``span("simulate")`` context managers
  emitting ``repro-tcp/obs/v1`` JSONL events; campaign workers forward
  them over the supervisor pipe into one merged trace per campaign.
* :mod:`repro.obs.trace` — the reading side: validation, begin/end
  pairing, the per-stage ``summarize`` breakdown.
* :mod:`repro.obs.profile` — opt-in ``REPRO_PROFILE=cprofile|interval``
  per-job profiling with output next to the result store.

The load-bearing invariant, enforced by the differential tests: with
everything enabled, simulation *results* are bit-identical to a run
with everything disabled — observation never perturbs the simulated
machine.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsMode,
    active_registry,
    metrics_enabled,
    resolve_obs,
    set_active_registry,
    use_registry,
)
from repro.obs.profile import maybe_profile, profile_dir, profile_mode
from repro.obs.spans import (
    SCHEMA,
    TraceCollector,
    set_span_sink,
    span,
    span_sink,
    synthesize_abort,
    use_span_sink,
)
from repro.obs.trace import (
    iter_events,
    load_events,
    pair_spans,
    render_summary,
    summarize,
    validate_event,
)

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsMode",
    "TraceCollector",
    "active_registry",
    "iter_events",
    "load_events",
    "maybe_profile",
    "metrics_enabled",
    "pair_spans",
    "profile_dir",
    "profile_mode",
    "render_summary",
    "resolve_obs",
    "set_active_registry",
    "set_span_sink",
    "span",
    "span_sink",
    "summarize",
    "synthesize_abort",
    "use_registry",
    "use_span_sink",
    "validate_event",
]
