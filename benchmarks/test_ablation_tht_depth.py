"""Ablation: THT history depth k (the paper evaluates k = 2).

Deeper history disambiguates more patterns but is slower to warm and
more fragile to noise; k = 1 is pairwise (Markov-style) correlation on
tags.  DESIGN.md calls this design choice out for ablation.
"""

from conftest import run_once

from repro.core.pht import PHTConfig
from repro.core.tcp import TagCorrelatingPrefetcher, TCPConfig
from repro.sim import SimulationConfig, simulate
from repro.sim.config import register_prefetcher
from repro.util.stats import geometric_mean
from repro.util.tables import format_table

WORKLOADS = ("swim", "applu", "art", "lucas", "mgrid", "wupwise")
DEPTHS = (1, 2, 3, 4)


def _gain(name: str, scale) -> float:
    ratios = []
    for workload in WORKLOADS:
        base = simulate(workload, SimulationConfig.baseline(), scale)
        result = simulate(workload, SimulationConfig.for_prefetcher(name), scale)
        ratios.append(result.ipc / base.ipc)
    return (geometric_mean(ratios) - 1.0) * 100.0


def test_ablation_tht_depth(benchmark, scale):
    def study():
        rows = []
        for depth in DEPTHS:
            name = register_prefetcher(
                f"abl-tht-k{depth}",
                lambda k=depth: TagCorrelatingPrefetcher(
                    TCPConfig(history_length=k, pht=PHTConfig(sets=256, ways=8))
                ),
            )
            rows.append([f"k={depth}", _gain(name, scale)])
        return rows

    rows = run_once(benchmark, study)
    print()
    print(format_table(["THT depth", "geomean IPC gain %"], rows,
                       title="THT history-depth ablation (8KB PHT)"))
    gains = {label: value for label, value in rows}
    # Correlation works at every depth on these regular workloads...
    assert all(value > 0 for value in gains.values())
    # ...and the paper's k=2 is within reach of the best depth.
    assert gains["k=2"] >= max(gains.values()) * 0.7
