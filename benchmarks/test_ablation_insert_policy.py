"""Ablation: L2 insertion policy for prefetched blocks.

Prefetch fills can enter the L2's recency order at MRU (classic) or at
LRU (low-priority insertion).  LRU insertion bounds the damage of
wrong prefetches — they are the first lines evicted — at the cost of
slightly shorter lifetimes for correct ones.  This bench measures both
policies on a polluting workload (parser: chase + hash, working set
close to the L2 size) and a clean one (applu: regular sweeps).
"""

from conftest import run_once

from repro.sim import SimulationConfig, simulate
from repro.util.tables import format_table

WORKLOADS = ("parser", "applu", "twolf")


def test_ablation_prefetch_insert_policy(benchmark, scale):
    def study():
        rows = []
        for policy in ("lru", "mru"):
            for workload in WORKLOADS:
                base = simulate(
                    workload,
                    SimulationConfig.baseline().with_hierarchy(
                        prefetch_insert_policy=policy
                    ),
                    scale,
                )
                config = SimulationConfig.for_prefetcher("tcp-8k").with_hierarchy(
                    prefetch_insert_policy=policy
                )
                result = simulate(workload, config, scale)
                rows.append([policy, workload, result.improvement_over(base)])
        return rows

    rows = run_once(benchmark, study)
    print()
    print(format_table(
        ["insert policy", "workload", "TCP-8K IPC gain %"],
        rows,
        title="Prefetch L2-insertion-policy ablation",
    ))
    gains = {(row[0], row[1]): row[2] for row in rows}
    # LRU insertion must not wreck the clean sweeps...
    assert gains[("lru", "applu")] > 0.6 * max(gains[("mru", "applu")], 0.1)
    # ...and must bound pollution damage at least as well as MRU on the
    # noisy workloads.
    assert gains[("lru", "twolf")] >= gains[("mru", "twolf")] - 2.0
