"""Miss Status Holding Registers (MSHRs).

The paper's L1 data cache has 64 MSHRs (Table 1).  MSHRs bound the
number of outstanding misses — the memory-level parallelism the
out-of-order core can actually exploit — and merge secondary misses to
a block that is already being fetched.

The model is timestamp-based to match the trace-driven simulator: an
entry is "outstanding" while the current time is before its completion
time.  The protocol is two-phase because the miss latency is not known
until the request has traversed the buses:

1. ``lookup`` — is this block already in flight?  If so the caller
   merges (waits on the existing fetch) instead of re-fetching.
2. ``acquire`` — reserve a register; returns the time the request can
   start (later than ``now`` only when all 64 registers are busy).
3. ``register`` — record the fetch's completion time so later misses
   can merge with it and so occupancy is tracked.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.component import Component
from repro.engine.events import MemoryEvent

__all__ = ["MSHRFile"]


class MSHRFile(Component):
    """A bounded file of in-flight misses keyed by block address."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError(f"MSHR count must be positive, got {entries}")
        self.entries = entries
        self._inflight: Dict[int, float] = {}
        #: earliest completion among in-flight entries (inf when none);
        #: a reap at any earlier time would remove nothing and is
        #: skipped outright.
        self._earliest = float("inf")
        #: number of primary misses that found the file full and stalled
        self.full_stalls = 0
        #: number of secondary misses merged into an existing entry
        self.merges = 0
        #: most registers simultaneously in flight over the run
        self.peak_occupancy = 0

    def _reap(self, now: float) -> None:
        """Drop entries whose fetch has completed by ``now``."""
        if now < self._earliest:
            return
        inflight = self._inflight
        done = [block for block, t in inflight.items() if t <= now]
        for block in done:
            del inflight[block]
        self._earliest = min(inflight.values(), default=float("inf"))

    def access(self, event: MemoryEvent) -> Optional[float]:
        """Component entry point: the merge query for one miss event.

        Returns the completion time of an in-flight fetch of the
        event's block (the merge outcome), or None when the miss is
        primary and the caller must fetch.
        """
        return self.lookup(event.block, event.now)

    def lookup(self, block: int, now: float) -> Optional[float]:
        """Return the completion time of an in-flight fetch of ``block``.

        Returns None when no fetch of this block is outstanding.  A hit
        is counted as a merge: the secondary miss shares the primary's
        register and data return.
        """
        completion = self._inflight.get(block)
        if completion is None or completion <= now:
            return None
        self.merges += 1
        return completion

    def acquire(self, now: float) -> float:
        """Reserve a register; return the earliest time a fetch can start.

        Returns ``now`` when a register is free.  When all registers
        hold in-flight misses, the new miss stalls until the earliest
        outstanding fetch completes — the structural hazard the paper's
        64-entry file exists to make rare (``full_stalls`` counts it).
        """
        inflight = self._inflight
        if len(inflight) < self.entries:
            # A free register exists even before reaping completed
            # entries; ``register`` prunes with the same ``now``
            # immediately after, so state converges identically.
            return now
        self._reap(now)
        if len(inflight) < self.entries:
            return now
        start = min(inflight.values())
        self.full_stalls += 1
        self._reap(start)
        return start

    def register(self, block: int, completion: float, now: Optional[float] = None) -> None:
        """Record that ``block``'s fetch will complete at ``completion``.

        Passing ``now`` prunes already-completed entries first, keeping
        the file bounded by ``entries`` live registers over arbitrarily
        long traces (completed entries otherwise linger until the next
        ``acquire``/``outstanding`` call reaps them).
        """
        if now is not None:
            self._reap(now)
        inflight = self._inflight
        inflight[block] = completion
        if completion < self._earliest:
            self._earliest = completion
        if len(inflight) > self.peak_occupancy:
            self.peak_occupancy = len(inflight)

    def outstanding(self, now: float) -> int:
        """Number of misses still in flight at ``now``."""
        self._reap(now)
        return len(self._inflight)

    def occupancy(self) -> int:
        """Registers currently held, completed-but-unreaped included.

        A strictly read-only view for observers (the metrics probe):
        ``outstanding`` reaps, and an observer-triggered reap would
        shift ``acquire`` start times and ``peak_occupancy`` — i.e.
        change the simulation it is watching.
        """
        return len(self._inflight)

    def clear(self) -> None:
        """Drop all state (between simulation runs)."""
        self._inflight.clear()
        self._earliest = float("inf")
        self.full_stalls = 0
        self.merges = 0
        self.peak_occupancy = 0

    reset = clear
