"""Worker supervision for fault-tolerant simulation campaigns.

A full regeneration of the paper's evaluation is ~150 independent
(workload, configuration) simulations.  At that scale, "one worker
died" must mean "one job retries", not "the whole pool is lost" — the
failure mode real SPEC-campaign infrastructure is built around.

This module provides the campaign resilience primitives:

* a structured error taxonomy (:class:`SimulationError`,
  :class:`WorkerCrash`, :class:`JobTimeout`, :class:`CorruptResult`)
  so every failure is classified, never a bare traceback;
* :func:`run_supervised` — a supervisor with two worker modes.
  ``attempt`` mode runs each job *attempt* in its own short-lived
  process (crash isolation: a dead worker loses exactly one attempt),
  enforces per-job timeouts, and retries with deterministic
  exponential backoff + jitter.  ``pool`` mode keeps a *warm pool* of
  long-lived workers draining a job queue: interpreter spawn, imports,
  and each worker's in-process trace cache are amortised across jobs,
  and jobs sharing an affinity ``group`` (e.g. one benchmark's trace)
  stay on the same worker.  Crash isolation is preserved — a dead pool
  worker is recycled and only its in-flight job is charged an attempt
  — and retries of pooled failures fall back to the per-attempt mode.
  The mode is selected per call or via ``REPRO_WORKER_MODE``;
* :class:`CampaignReport` — successes and failures counted separately,
  with a human-readable failure summary;
* a deterministic fault-injection hook (``REPRO_FAULT_RATE`` /
  ``REPRO_FAULT_KIND`` or :func:`set_fault_injector`) that the tests
  use to prove every failure path actually recovers;
* platform probes: :func:`supervision_context` falls back
  ``fork`` → ``spawn`` → in-process, and :func:`default_workers`
  survives platforms where ``multiprocessing.cpu_count()`` raises.

Everything is deterministic: whether attempt *k* of job *j* faults, and
how long its backoff sleeps, derive from SHA-256 of ``(job key,
attempt)`` — two runs of a faulty campaign fail and recover
identically.
"""

from __future__ import annotations

import gc
import hashlib
import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import spans as obs_spans

__all__ = [
    "CampaignInterrupted",
    "CampaignReport",
    "CorruptResult",
    "FleetDegraded",
    "HOST_FAULT_KINDS",
    "HostLost",
    "HostPartition",
    "IO_FAULT_KINDS",
    "InvariantViolation",
    "JobFailure",
    "JobTimeout",
    "RetryPolicy",
    "SimulationError",
    "StallTimeout",
    "StoreDegraded",
    "WORKER_MODES",
    "WORKER_MODE_ENV",
    "WorkerCrash",
    "default_workers",
    "emit_heartbeat",
    "graceful_shutdown",
    "heartbeat_active",
    "is_retryable",
    "maybe_inject_fault",
    "maybe_inject_host_fault",
    "maybe_inject_io_fault",
    "request_shutdown",
    "resolve_worker_mode",
    "run_supervised",
    "set_fault_injector",
    "set_heartbeat_sink",
    "set_host_fault_injector",
    "set_io_fault_injector",
    "shutdown_requested",
    "shutdown_watch_active",
    "supervision_context",
]


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


class SimulationError(RuntimeError):
    """Base class for classified campaign failures."""


class WorkerCrash(SimulationError):
    """A worker process died without reporting a result."""


class JobTimeout(SimulationError):
    """A job exceeded its per-attempt time budget."""


class StallTimeout(JobTimeout):
    """A job stopped emitting heartbeats for longer than the stall window.

    Distinct from :class:`JobTimeout`: a slow-but-progressing job keeps
    heartbeating and is left alone; a stalled one is killed even when no
    wall-clock budget is set.
    """


class CorruptResult(SimulationError):
    """A result (from a worker or the on-disk store) failed validation."""


class StoreDegraded(SimulationError):
    """The persistent result store fell back to in-memory-only operation.

    Raised nowhere in the hot path — the store *never* kills a campaign
    over I/O trouble.  After bounded write retries fail persistently
    (ENOSPC, EIO, an unacquirable lock), the store flips its
    ``degraded`` flag, keeps serving and accepting results in memory,
    and the campaign runs to completion.  This class exists for the
    *reporting* side: the CLI surfaces the degradation under this name
    and exits nonzero, because results produced after the degradation
    point were never persisted.
    """


class HostLost(WorkerCrash):
    """A fleet host (its agent process or transport) died mid-campaign.

    Subclasses :class:`WorkerCrash` because the recovery story is the
    same — the in-flight job is charged one attempt and reassigned —
    just one supervision level up: a host is to the fleet coordinator
    what a worker process is to the pool supervisor.
    """


class HostPartition(StallTimeout):
    """A fleet host stopped responding (heartbeat-silent) but never died.

    The network-partition analogue of a worker stall: the transport is
    nominally alive, yet nothing — heartbeats, results, errors — has
    arrived within the stall window.  The coordinator treats the host
    as lost (its jobs are reassigned) because an unreachable host and a
    dead one are indistinguishable from this side of the wire.
    """


class FleetDegraded(SimulationError):
    """Every fleet host became unreachable; the campaign fell back to
    single-host (local, in-tree supervisor) execution.

    Like :class:`StoreDegraded`, this is a *reporting* class: the
    campaign still completes — locally — but the CLI surfaces the
    degradation under this name and exits nonzero, because the
    requested fleet never materialised or was entirely lost.
    """


class CampaignInterrupted(SimulationError):
    """The campaign was stopped by SIGTERM/SIGINT before it finished.

    Raised from in-process supervision paths when a graceful-shutdown
    request arrives mid-run; multiprocess supervisors instead stop
    dispatching, reap their workers, and return a partial report with
    ``interrupted`` set.  Either way no completed result is lost.
    """


class InvariantViolation(SimulationError):
    """The simulator's internal state broke a runtime invariant.

    Raised by :mod:`repro.sim.sanitizer` with the failing invariant's
    name and a snapshot of the relevant state.  Deterministic for a
    given (workload, config), so the supervisor treats it as
    NON-RETRYABLE: re-running the same broken code cannot help, and
    retrying would only mask a silently-wrong simulator.
    """

    def __init__(
        self,
        message: str,
        invariant: str = "",
        snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.invariant = invariant
        self.snapshot = dict(snapshot or {})


#: name → class, used to rebuild errors reported across process
#: boundaries and to parse ``REPRO_FAULT_KIND``.
ERROR_CLASSES: Dict[str, type] = {
    "SimulationError": SimulationError,
    "WorkerCrash": WorkerCrash,
    "JobTimeout": JobTimeout,
    "StallTimeout": StallTimeout,
    "CorruptResult": CorruptResult,
    "InvariantViolation": InvariantViolation,
    "StoreDegraded": StoreDegraded,
    "HostLost": HostLost,
    "HostPartition": HostPartition,
    "FleetDegraded": FleetDegraded,
    "CampaignInterrupted": CampaignInterrupted,
}


def is_retryable(error: SimulationError) -> bool:
    """Whether retrying the attempt could plausibly change the outcome.

    Crashes, timeouts, and transient corruption are worth retrying; an
    :class:`InvariantViolation` is deterministic simulator breakage and
    is not, and a :class:`CampaignInterrupted` means the operator asked
    us to stop — retrying would defy the shutdown request.
    """
    return not isinstance(error, (InvariantViolation, CampaignInterrupted))


def _rebuild_error(kind: str, message: str) -> SimulationError:
    return ERROR_CLASSES.get(kind, SimulationError)(message)


# ---------------------------------------------------------------------------
# Deterministic fault injection
# ---------------------------------------------------------------------------

FAULT_RATE_ENV = "REPRO_FAULT_RATE"
FAULT_KIND_ENV = "REPRO_FAULT_KIND"

#: fault kinds the injector understands.  ``crash`` kills the worker
#: process outright (``os._exit``); ``timeout`` makes the attempt hang
#: past any deadline; ``error`` raises a :class:`SimulationError`;
#: ``corrupt`` lets the job finish and then mangles its result so the
#: validator must catch it; ``state-corrupt`` corrupts the *simulator's
#: internal state* mid-run so the sanitizer must raise an
#: :class:`InvariantViolation`; ``stall`` emits one heartbeat and then
#: goes silent forever, so only the stall watchdog can reclaim the job.
FAULT_KINDS = ("crash", "error", "timeout", "corrupt", "state-corrupt", "stall")

#: I/O-layer fault kinds, injected at the store and trace-cache write
#: paths rather than into jobs: ``io-enospc``/``io-eio`` raise the
#: corresponding ``OSError`` from the write, ``io-torn`` silently
#: persists a partial, newline-less record — exactly what a kill -9
#: mid-flush leaves behind, so the next loader must truncate it.
IO_FAULT_KINDS = ("io-enospc", "io-eio", "io-torn")

#: fleet-layer fault kinds, injected at the coordinator against whole
#: hosts rather than into jobs: ``host-lost`` kills a host's agent
#: process outright after a dispatch, ``host-partition`` mutes a host
#: (its messages are discarded, as if the network dropped them) until
#: the stall watchdog reclaims it, ``host-slow`` stretches a host's
#: job turnaround without ever losing it — the host must survive.
HOST_FAULT_KINDS = ("host-lost", "host-partition", "host-slow")

#: test hook: a callable ``(job_key, attempt) -> Optional[str]``
#: returning a fault kind (or None).  Takes precedence over the
#: environment knobs.  Only effective in-process or under ``fork``.
_FAULT_INJECTOR: Optional[Callable[[str, int], Optional[str]]] = None

#: test hook for the I/O layer, same shape, keyed by operation
#: (e.g. ``store|results.jsonl|swim@100000``) instead of job.
_IO_FAULT_INJECTOR: Optional[Callable[[str, int], Optional[str]]] = None

#: test hook for the fleet layer, same shape, keyed by host
#: (``(host_id, dispatch_number)``) instead of job.
_HOST_FAULT_INJECTOR: Optional[Callable[[str, int], Optional[str]]] = None


def set_fault_injector(
    injector: Optional[Callable[[str, int], Optional[str]]],
) -> None:
    """Install (or with ``None`` clear) the fault-injection callable."""
    global _FAULT_INJECTOR
    _FAULT_INJECTOR = injector


def set_io_fault_injector(
    injector: Optional[Callable[[str, int], Optional[str]]],
) -> None:
    """Install (or with ``None`` clear) the I/O fault-injection callable."""
    global _IO_FAULT_INJECTOR
    _IO_FAULT_INJECTOR = injector


def set_host_fault_injector(
    injector: Optional[Callable[[str, int], Optional[str]]],
) -> None:
    """Install (or with ``None`` clear) the host fault-injection callable."""
    global _HOST_FAULT_INJECTOR
    _HOST_FAULT_INJECTOR = injector


def _unit_interval(token: str) -> float:
    """Deterministic hash of ``token`` onto [0, 1)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def maybe_inject_fault(job_key: str, attempt: int) -> Optional[str]:
    """Return the fault kind planned for this (job, attempt), if any.

    With the environment knobs, attempt *k* of job *j* faults iff
    ``sha256(j|k) < REPRO_FAULT_RATE`` — independent per attempt, so a
    faulted job's retry usually succeeds, and fully reproducible.
    """
    if _FAULT_INJECTOR is not None:
        return _FAULT_INJECTOR(job_key, attempt)
    rate_text = os.environ.get(FAULT_RATE_ENV)
    if not rate_text:
        return None
    try:
        rate = float(rate_text)
    except ValueError:
        return None
    if rate <= 0.0 or _unit_interval(f"fault|{job_key}|{attempt}") >= rate:
        return None
    kind = os.environ.get(FAULT_KIND_ENV, "crash")
    if kind in IO_FAULT_KINDS:
        return None  # an I/O fault targets writes, not jobs
    if kind in HOST_FAULT_KINDS:
        return None  # a host fault targets whole fleet hosts, not jobs
    return kind if kind in FAULT_KINDS else "crash"


def maybe_inject_io_fault(op_key: str, attempt: int = 1) -> Optional[str]:
    """The I/O fault kind planned for this (operation, attempt), if any.

    Same deterministic scheme as :func:`maybe_inject_fault`, but keyed
    by write operation and restricted to :data:`IO_FAULT_KINDS`, so
    ``REPRO_FAULT_KIND=io-enospc`` perturbs the persistence layer while
    leaving job execution untouched (and vice versa).
    """
    if _IO_FAULT_INJECTOR is not None:
        return _IO_FAULT_INJECTOR(op_key, attempt)
    rate_text = os.environ.get(FAULT_RATE_ENV)
    if not rate_text:
        return None
    try:
        rate = float(rate_text)
    except ValueError:
        return None
    kind = os.environ.get(FAULT_KIND_ENV, "")
    if kind not in IO_FAULT_KINDS:
        return None
    if rate <= 0.0 or _unit_interval(f"iofault|{op_key}|{attempt}") >= rate:
        return None
    return kind


def maybe_inject_host_fault(host_id: str, dispatch: int = 1) -> Optional[str]:
    """The host fault kind planned for this (host, dispatch), if any.

    Same deterministic scheme as :func:`maybe_inject_fault`, but keyed
    by host and restricted to :data:`HOST_FAULT_KINDS`, so
    ``REPRO_FAULT_KIND=host-lost`` perturbs the fleet layer while
    leaving both job execution and the persistence layer untouched —
    and, critically, leaving the local-fallback workers a degraded
    fleet runs on completely healthy.
    """
    if _HOST_FAULT_INJECTOR is not None:
        return _HOST_FAULT_INJECTOR(host_id, dispatch)
    rate_text = os.environ.get(FAULT_RATE_ENV)
    if not rate_text:
        return None
    try:
        rate = float(rate_text)
    except ValueError:
        return None
    kind = os.environ.get(FAULT_KIND_ENV, "")
    if kind not in HOST_FAULT_KINDS:
        return None
    if rate <= 0.0 or _unit_interval(f"hostfault|{host_id}|{dispatch}") >= rate:
        return None
    return kind


def _corrupted(result: Any) -> Any:
    """Mangle a result so validation must reject it (fault injection)."""
    core = getattr(result, "core", None)
    if core is not None and hasattr(core, "cycles"):
        return replace(result, core=replace(core, cycles=float("nan")))
    return None


# ---------------------------------------------------------------------------
# Heartbeats
# ---------------------------------------------------------------------------

#: process-wide heartbeat sink: ``(accesses_done, accesses_total,
#: sim_time) -> None``.  Installed by the worker entry (to forward
#: beats over the result pipe) or the in-process supervisor; the
#: simulation loop publishes through :func:`emit_heartbeat` without
#: knowing who, if anyone, is listening.
_HEARTBEAT_SINK: Optional[Callable[[int, int, float], None]] = None


def set_heartbeat_sink(sink: Optional[Callable[[int, int, float], None]]) -> None:
    """Install (or with ``None`` clear) the process heartbeat sink."""
    global _HEARTBEAT_SINK
    _HEARTBEAT_SINK = sink


def heartbeat_active() -> bool:
    """Whether anyone is listening for heartbeats in this process."""
    return _HEARTBEAT_SINK is not None


def emit_heartbeat(done: int, total: int, sim_time: float) -> None:
    """Publish one progress heartbeat (no-op when nobody listens)."""
    sink = _HEARTBEAT_SINK
    if sink is not None:
        sink(done, total, sim_time)


#: minimum wall-clock seconds between heartbeats actually sent over a
#: worker's pipe (the simulator emits far more often than that).
HEARTBEAT_MIN_INTERVAL = 0.2


def _pipe_heartbeat_sink(
    conn: multiprocessing.connection.Connection,
) -> Callable[[int, int, float], None]:
    """A rate-limited sink forwarding beats over the result pipe."""
    last_sent = [0.0]

    def send(done: int, total: int, sim_time: float) -> None:
        now = time.monotonic()
        if now - last_sent[0] < HEARTBEAT_MIN_INTERVAL:
            return
        last_sent[0] = now
        try:
            conn.send(("hb", int(done), int(total), float(sim_time)))
        except (BrokenPipeError, OSError):  # parent gone; nothing to do
            pass

    return send


def _pipe_span_sink(
    conn: multiprocessing.connection.Connection,
) -> Callable[[Dict[str, Any]], None]:
    """A span-event sink forwarding over the result pipe.

    Unlike heartbeats, span events are never rate-limited: each one is
    a begin/end boundary the parent needs to pair (a dropped end would
    read as a dangling span).  Volume is bounded by span granularity —
    a handful per job, not per access.
    """

    def send(event: Dict[str, Any]) -> None:
        try:
            conn.send(("sp", event))
        except (BrokenPipeError, OSError):  # parent gone; nothing to do
            pass

    return send


def _reset_child_obs(
    conn: Optional[multiprocessing.connection.Connection],
) -> None:
    """Reset fork-inherited observability state in a worker.

    Under ``fork`` a worker inherits the parent's active span sink and
    metrics registry.  Recording into either would corrupt the parent's
    picture (a campaign TraceCollector in the child buffers events the
    parent never sees; a shared registry double-counts after fork).
    Workers therefore *unconditionally* reinstall: the pipe-forwarding
    sink when the parent asked for spans (``conn``), else no sink; and
    no active registry (each run builds its own and ships the snapshot
    through the span stream).
    """
    obs_spans.set_span_sink(_pipe_span_sink(conn) if conn is not None else None)
    obs_metrics.set_active_registry(None)


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------

#: process-wide "stop now" latch set by SIGTERM/SIGINT under
#: :func:`graceful_shutdown` (or directly via :func:`request_shutdown`).
#: Supervisor loops poll it between dispatches: no new work starts, live
#: workers are reaped (terminate, then kill), and the campaign returns a
#: partial report with ``interrupted`` set instead of dying mid-write.
_SHUTDOWN_REQUESTED = False

#: signal number that triggered the shutdown (for the exit-status story:
#: 128+SIGTERM vs 130 for SIGINT), or None.
_SHUTDOWN_SIGNAL: Optional[int] = None


def request_shutdown(signum: Optional[int] = None) -> None:
    """Latch a graceful-shutdown request (idempotent, signal-safe)."""
    global _SHUTDOWN_REQUESTED, _SHUTDOWN_SIGNAL
    _SHUTDOWN_REQUESTED = True
    if _SHUTDOWN_SIGNAL is None:
        _SHUTDOWN_SIGNAL = signum


def shutdown_requested() -> bool:
    """Whether a graceful shutdown has been requested in this process."""
    return _SHUTDOWN_REQUESTED


def shutdown_signal() -> Optional[int]:
    """The signal that triggered the pending shutdown, if any."""
    return _SHUTDOWN_SIGNAL


def clear_shutdown() -> None:
    """Reset the shutdown latch (tests, and campaign (re)entry)."""
    global _SHUTDOWN_REQUESTED, _SHUTDOWN_SIGNAL
    _SHUTDOWN_REQUESTED = False
    _SHUTDOWN_SIGNAL = None


#: live :class:`graceful_shutdown` contexts with handlers installed —
#: tells the simulation's progress probe that a mid-run shutdown check
#: is worth the compare even when no heartbeat sink is active.
_SHUTDOWN_WATCHERS = 0


def shutdown_watch_active() -> bool:
    """Whether a graceful-shutdown context is watching this process."""
    return _SHUTDOWN_WATCHERS > 0


class graceful_shutdown:
    """Context manager installing SIGTERM/SIGINT → :func:`request_shutdown`.

    The first signal latches the request and lets the supervisor wind
    down cleanly (checkpoint markers, reap workers, partial report); a
    second signal of the same kind restores default disposition mid-way
    so an operator can still force an exit.  Installing handlers is only
    legal from the main thread — elsewhere (e.g. a campaign driven from
    a worker thread) this degrades to a no-op and the usual
    KeyboardInterrupt path applies.
    """

    def __init__(self) -> None:
        self._previous: Dict[int, Any] = {}

    def __enter__(self) -> "graceful_shutdown":
        import signal as _signal

        clear_shutdown()

        def _handle(signum: int, frame: Any) -> None:
            request_shutdown(signum)
            # A repeat signal means "stop waiting": fall back to the
            # default disposition so the next one is fatal.
            try:
                _signal.signal(signum, _signal.SIG_DFL)
            except (ValueError, OSError):  # pragma: no cover
                pass

        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                self._previous[signum] = _signal.signal(signum, _handle)
            except (ValueError, OSError):
                # Not the main thread (or an embedded interpreter):
                # graceful shutdown degrades to a no-op.
                break
        if self._previous:
            global _SHUTDOWN_WATCHERS
            _SHUTDOWN_WATCHERS += 1
        return self

    def __exit__(self, *exc_info: Any) -> None:
        import signal as _signal

        if self._previous:
            global _SHUTDOWN_WATCHERS
            _SHUTDOWN_WATCHERS -= 1
        for signum, previous in self._previous.items():
            try:
                _signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()


# ---------------------------------------------------------------------------
# Platform probes
# ---------------------------------------------------------------------------

START_METHOD_ENV = "REPRO_START_METHOD"


def supervision_context() -> Optional[multiprocessing.context.BaseContext]:
    """The multiprocessing context campaigns should use, or ``None``.

    Tries ``fork`` (cheap, inherits the parent's registries), then
    ``spawn``; returns ``None`` — meaning "run in-process" — where
    neither exists.  ``REPRO_START_METHOD`` overrides the probe order
    (value ``inprocess`` forces the serial fallback).
    """
    override = os.environ.get(START_METHOD_ENV, "").strip().lower()
    if override in ("inprocess", "none"):
        return None
    methods = ([override] if override else []) + ["fork", "spawn"]
    for method in methods:
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return None


WORKER_MODE_ENV = "REPRO_WORKER_MODE"

#: supported worker dispatch modes.  ``pool`` keeps long-lived workers
#: draining a job queue (startup amortised, affinity-aware); ``attempt``
#: spawns one short-lived process per attempt (the PR 1 behavior, and
#: the retry fallback for pooled failures).
WORKER_MODES = ("pool", "attempt")


def resolve_worker_mode(mode: Optional[str] = None, default: str = "attempt") -> str:
    """Resolve an explicit mode, ``REPRO_WORKER_MODE``, or the default.

    An explicit ``mode`` wins and must be valid; an unrecognised
    environment value is ignored (campaigns should never die over a
    typo'd knob) and the caller's ``default`` applies.
    """
    if mode:
        normalized = mode.strip().lower()
        if normalized not in WORKER_MODES:
            raise ValueError(
                f"unknown worker mode {mode!r}; expected one of {WORKER_MODES}"
            )
        return normalized
    env = os.environ.get(WORKER_MODE_ENV, "").strip().lower()
    if env in WORKER_MODES:
        return env
    return default


def default_workers(jobs: int = 0) -> int:
    """Resolve a ``--jobs`` value to a worker count (0 = CPU count).

    ``multiprocessing.cpu_count()`` raises ``NotImplementedError`` on
    some platforms (it never returns 0); fall back to 2 workers there.
    """
    if jobs > 0:
        return jobs
    try:
        count = multiprocessing.cpu_count()
    except NotImplementedError:
        count = 0
    return max(count, 1) if count else 2


# ---------------------------------------------------------------------------
# Retry policy and campaign report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the supervisor tries before declaring a job failed."""

    #: additional attempts after the first (total attempts = retries + 1).
    retries: int = 2
    #: per-attempt wall-clock budget in seconds (None = unlimited).
    timeout: Optional[float] = None
    #: kill an attempt that emits no heartbeat for this many seconds
    #: (None = no stall watchdog).  Unlike ``timeout`` this never kills
    #: a slow-but-progressing job: any heartbeat resets the window.
    stall_timeout: Optional[float] = None
    #: base backoff delay; attempt k waits ~``base * 2**(k-1)`` seconds.
    backoff_base: float = 0.05
    #: backoff ceiling.
    backoff_max: float = 2.0
    #: fail-fast budget: abort the whole campaign once this many jobs
    #: have *permanently* failed (exhausted their retries), instead of
    #: draining the rest of a doomed sweep.  None = drain everything.
    max_failures: Optional[int] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ValueError(
                f"stall timeout must be positive, got {self.stall_timeout}"
            )
        if self.max_failures is not None and self.max_failures < 1:
            raise ValueError(
                f"max failures must be >= 1, got {self.max_failures}"
            )

    def backoff(self, job_key: str, attempt: int) -> float:
        """Deterministic exponential backoff with jitter in [0.5x, 1.5x)."""
        delay = min(self.backoff_base * (2 ** max(attempt - 1, 0)), self.backoff_max)
        return delay * (0.5 + _unit_interval(f"backoff|{job_key}|{attempt}"))


@dataclass(frozen=True)
class JobFailure:
    """One job that exhausted its retry budget."""

    key: str
    error: str  # taxonomy class name, e.g. "WorkerCrash"
    message: str
    attempts: int

    def describe(self) -> str:
        return f"{self.key}: {self.error} after {self.attempts} attempt(s) — {self.message}"


@dataclass
class CampaignReport:
    """Outcome of one supervised campaign: successes and failures, apart.

    ``executed`` counts *successful* simulations only — a job whose
    worker died is a failure, not an execution.  ``skipped`` counts
    jobs satisfied from a cache or store before any worker ran.
    """

    completed: Dict[str, Any] = field(default_factory=dict)
    failures: List[JobFailure] = field(default_factory=list)
    skipped: int = 0
    #: attempts beyond each job's first (i.e. how much retrying it took).
    retried: int = 0
    #: replacement workers spawned after a pool worker died (pool mode).
    recycled: int = 0
    #: merged span-trace file written for this campaign (``REPRO_OBS``
    #: tracing on), else None.
    trace_path: Optional[str] = None
    #: directory holding per-job profiles (``REPRO_PROFILE`` on), else None.
    profile_dir: Optional[str] = None
    #: durability counters from the campaign's result store
    #: (:meth:`repro.sim.store.ResultStore.health`), else None.
    store_health: Optional[Dict[str, Any]] = None
    #: a graceful-shutdown request (SIGTERM/SIGINT) cut the campaign
    #: short; ``completed`` holds everything that finished before it.
    interrupted: bool = False
    #: human-readable reason the campaign aborted early (``max_failures``
    #: fail-fast tripped), else None.
    aborted: Optional[str] = None
    #: fleet hosts that died or partitioned mid-campaign.
    hosts_lost: int = 0
    #: jobs reassigned from a lost host to a survivor.
    reassigned: int = 0
    #: successful jobs per fleet host id (fleet campaigns only).
    per_host: Dict[str, int] = field(default_factory=dict)
    #: reason the fleet degraded to single-host local execution, else None.
    fleet_degraded: Optional[str] = None

    @property
    def executed(self) -> int:
        return len(self.completed)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    def merge(self, other: "CampaignReport") -> "CampaignReport":
        self.completed.update(other.completed)
        self.failures.extend(other.failures)
        self.skipped += other.skipped
        self.retried += other.retried
        self.recycled += other.recycled
        self.hosts_lost += other.hosts_lost
        self.reassigned += other.reassigned
        for host, count in other.per_host.items():
            self.per_host[host] = self.per_host.get(host, 0) + count
        self.interrupted = self.interrupted or other.interrupted
        if self.aborted is None:
            self.aborted = other.aborted
        if self.fleet_degraded is None:
            self.fleet_degraded = other.fleet_degraded
        if self.trace_path is None:
            self.trace_path = other.trace_path
        if self.profile_dir is None:
            self.profile_dir = other.profile_dir
        if self.store_health is None:
            self.store_health = other.store_health
        return self

    def store_health_line(self) -> Optional[str]:
        """One-line digest of store durability, or None without a store."""
        health = self.store_health
        if not health:
            return None
        line = (
            f"store: {health.get('records', 0)} record(s), "
            f"quarantined {health.get('quarantined', 0)}, "
            f"torn-truncated {health.get('torn_truncated', 0)}, "
            f"compacted {health.get('compacted', 0)}"
        )
        if health.get("degraded"):
            line += (
                f"; DEGRADED to in-memory-only, {health.get('lost_writes', 0)} "
                f"write(s) lost ({health.get('degraded_reason')})"
            )
        return line

    def summary(self) -> str:
        """Human-readable campaign digest (one line per failure)."""
        head = (
            f"campaign: {self.executed} succeeded, {self.failed} failed, "
            f"{self.skipped} skipped (cached), {self.retried} retried attempt(s)"
        )
        if self.recycled:
            head += f", {self.recycled} worker(s) recycled"
        if self.hosts_lost:
            head += (
                f", {self.hosts_lost} host(s) lost"
                f" ({self.reassigned} job(s) reassigned)"
            )
        if self.per_host:
            parts = ", ".join(
                f"{host}={count}" for host, count in sorted(self.per_host.items())
            )
            head += f"\nper-host: {parts}"
        if self.fleet_degraded:
            head += f"\nFLEET DEGRADED to single-host: {self.fleet_degraded}"
        if self.interrupted:
            head += "\nINTERRUPTED: campaign stopped early by signal; partial results above"
        if self.aborted:
            head += f"\nABORTED: {self.aborted}"
        health_line = self.store_health_line()
        if health_line:
            head += f"\n{health_line}"
        if self.trace_path:
            head += f"\ntrace: {self.trace_path}"
        if self.profile_dir:
            head += f"\nprofiles: {self.profile_dir}"
        if not self.failures:
            return head
        lines = [head, "failures:"]
        lines += [f"  - {failure.describe()}" for failure in self.failures]
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.failures:
            raise SimulationError(self.summary())


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------


def _attempt_entry(
    conn: multiprocessing.connection.Connection,
    run_one: Callable[[Any], Any],
    job: Any,
    job_key: str,
    attempt: int,
    child_setup: Optional[Callable[[], None]],
    forward_spans: bool = False,
) -> None:
    """Worker body for one attempt: run the job, report over the pipe.

    Every outcome is reported as a tagged tuple; a worker that dies
    before sending anything is classified as a crash by the parent.

    The ``attempt`` span opens *before* the fault-injection point on
    purpose: a ``crash``/``timeout``/``stall`` fault then dies with the
    span open, exercising the supervisor's synthesized-abort path the
    same way a real mid-job death would.
    """
    try:
        if child_setup is not None:
            child_setup()
        _reset_child_obs(conn if forward_spans else None)
        with obs_profile.maybe_profile(f"{job_key}-attempt{attempt}"):
            with obs_spans.span("attempt", key=job_key, attempt=attempt):
                fault = maybe_inject_fault(job_key, attempt)
                if fault == "crash":
                    os._exit(13)
                if fault == "timeout":
                    time.sleep(3600.0)
                if fault == "stall":
                    # Prove liveness once, then go silent: only the stall
                    # watchdog (not a wall-clock budget) can reclaim this job.
                    conn.send(("hb", 0, 0, 0.0))
                    time.sleep(3600.0)
                if fault == "error":
                    raise SimulationError(
                        f"injected fault ({job_key}, attempt {attempt})"
                    )
                if fault == "state-corrupt":
                    from repro.sim import sanitizer as _sanitizer

                    _sanitizer.schedule_state_corruption()
                set_heartbeat_sink(_pipe_heartbeat_sink(conn))
                result = run_one(job)
                if fault == "corrupt":
                    result = _corrupted(result)
        conn.send(("ok", result))
    except SimulationError as exc:
        conn.send(("err", type(exc).__name__, str(exc)))
    except BaseException as exc:  # classify unexpected worker bugs too
        conn.send(("err", "SimulationError", f"{type(exc).__name__}: {exc}"))
    finally:
        set_heartbeat_sink(None)
        conn.close()


@dataclass
class _Attempt:
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    job: Any
    key: str
    attempt: int
    deadline: Optional[float]
    #: wall-clock time of the last heartbeat (or of the spawn).
    last_beat: float = 0.0
    #: latest reported progress: (accesses done, total, sim time).
    progress: Optional[Tuple[int, int, float]] = None
    #: forwarded span begins not yet matched by an end, by span id —
    #: the supervisor synthesizes ``aborted`` ends for these if the
    #: worker dies or is killed mid-span.
    open_spans: Dict[str, Dict[str, Any]] = field(default_factory=dict)


def _run_in_process(
    jobs: Sequence[Any],
    run_one: Callable[[Any], Any],
    key: Callable[[Any], str],
    policy: RetryPolicy,
    validate: Optional[Callable[[Any], None]],
    progress: Optional[Callable[[int, int, str, str], None]],
    heartbeat: Optional[Callable[[str, int, int, float], None]] = None,
    attempt_offset: int = 0,
) -> CampaignReport:
    """Serial fallback where multiprocessing is unavailable.

    Crash/timeout/stall faults cannot take the process down here, so
    the injector's ``crash``/``timeout``/``stall`` kinds surface as
    their taxonomy exceptions instead; per-attempt wall-clock limits
    are not enforced.  Heartbeats are delivered synchronously.

    ``attempt_offset`` shifts the absolute attempt numbers (the pool
    fallback passes 1 so attempt hashes — fault injection, backoff
    jitter — line up with "this job already burned attempt 1").
    """
    report = CampaignReport()
    total = len(jobs)
    first = attempt_offset + 1
    for job in jobs:
        if shutdown_requested():
            report.interrupted = True
            break
        if (
            policy.max_failures is not None
            and report.failed >= policy.max_failures
        ):
            report.aborted = (
                f"stopped after {report.failed} permanent failure(s) "
                f"(max-failures={policy.max_failures})"
            )
            break
        job_key = key(job)
        last: SimulationError = SimulationError("no attempts made")
        attempts_made = 0
        for attempt in range(first, policy.retries + 2):
            attempts_made = attempt
            if attempt > first:
                report.retried += 1
                time.sleep(policy.backoff(job_key, attempt))
            try:
                fault = maybe_inject_fault(job_key, attempt)
                if fault == "crash":
                    raise WorkerCrash(f"injected crash ({job_key}, attempt {attempt})")
                if fault == "timeout":
                    raise JobTimeout(f"injected timeout ({job_key}, attempt {attempt})")
                if fault == "stall":
                    raise StallTimeout(f"injected stall ({job_key}, attempt {attempt})")
                if fault == "error":
                    raise SimulationError(f"injected fault ({job_key}, attempt {attempt})")
                if fault == "state-corrupt":
                    from repro.sim import sanitizer as _sanitizer

                    _sanitizer.schedule_state_corruption()
                if heartbeat is not None:
                    set_heartbeat_sink(
                        lambda done, n, t, _key=job_key: heartbeat(_key, done, n, t)
                    )
                try:
                    # In-process attempts report to whatever span sink
                    # the campaign installed (no pipe to forward over).
                    with obs_profile.maybe_profile(f"{job_key}-attempt{attempt}"):
                        with obs_spans.span(
                            "attempt", key=job_key, attempt=attempt
                        ):
                            result = run_one(job)
                finally:
                    set_heartbeat_sink(None)
                if fault == "corrupt":
                    result = _corrupted(result)
                if validate is not None:
                    try:
                        validate(result)
                    except SimulationError:
                        raise
                    except Exception as exc:
                        raise CorruptResult(f"{job_key}: {exc}") from exc
                report.completed[job_key] = result
                break
            except CampaignInterrupted:
                # Shutdown arrived mid-run: the half-done job is not a
                # failure — it simply never finished.  Resume covers it.
                report.interrupted = True
                break
            except SimulationError as exc:
                last = exc
                if not is_retryable(exc):
                    break  # deterministic breakage: retrying cannot help
            except Exception as exc:
                last = SimulationError(f"{type(exc).__name__}: {exc}")
        if report.interrupted and job_key not in report.completed:
            break
        if job_key not in report.completed:
            report.failures.append(
                JobFailure(job_key, type(last).__name__, str(last), attempts_made)
            )
        if progress is not None:
            done = report.executed + report.failed
            status = "ok" if job_key in report.completed else "FAILED"
            progress(done, total, job_key, status)
    return report


#: sentinel returned by the message pump when a pipe closed with no
#: final payload (worker died after EOF, or mid-send).
_EOF = object()


def _drain_pipe(
    conn: multiprocessing.connection.Connection,
    on_beat: Callable[[int, int, float], None],
    on_span: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Any:
    """Consume queued messages from one worker pipe.

    Heartbeats go to ``on_beat`` and forwarded span events (``("sp",
    event)``) to ``on_span``; the first final payload (``ok`` / ``err``
    tuple) is returned.  Returns ``None`` when only stream messages
    were pending, ``_EOF`` when the pipe closed with no final payload.
    Span events arriving with no ``on_span`` (a worker mis-wired to
    forward into a non-tracing parent) are dropped, not misclassified
    as a final payload.
    """
    while True:
        try:
            if not conn.poll():
                return None
            payload = conn.recv()
        except (EOFError, OSError):
            return _EOF
        if isinstance(payload, tuple) and len(payload) == 4 and payload[0] == "hb":
            on_beat(payload[1], payload[2], payload[3])
            continue
        if isinstance(payload, tuple) and len(payload) == 2 and payload[0] == "sp":
            if on_span is not None:
                on_span(payload[1])
            continue
        return payload


# ---------------------------------------------------------------------------
# Warm worker pool
# ---------------------------------------------------------------------------


def _pool_worker_entry(
    job_conn: multiprocessing.connection.Connection,
    result_conn: multiprocessing.connection.Connection,
    run_one: Callable[[Any], Any],
    child_setup: Optional[Callable[[], None]],
    forward_spans: bool = False,
) -> None:
    """Worker body for pool mode: drain jobs until told to stop.

    Per-job outcomes use exactly the same tagged-tuple protocol as
    :func:`_attempt_entry`, so the parent classifies pooled and
    per-attempt results with shared code.  The process-wide heartbeat
    sink is installed once and reused across jobs — one of the costs
    the pool amortises.

    Long-lived workers also apply the standard warm-worker GC
    discipline: the post-import heap is frozen (it is permanent, so
    scanning it every generation-2 pass is pure overhead — and under
    ``fork`` the scan's refcount writes would unshare copy-on-write
    pages), the cycle collector is paused while a job runs, and one
    explicit collection runs between jobs.  A simulation allocates
    heavily but almost nothing survives it, so the inter-job collect is
    where the garbage actually dies; pausing the collector mid-job only
    defers that work, it cannot leak across jobs.  Short-lived
    per-attempt workers get the same effect for free from process exit.
    """
    try:
        if child_setup is not None:
            child_setup()
        _reset_child_obs(result_conn if forward_spans else None)
        set_heartbeat_sink(_pipe_heartbeat_sink(result_conn))
        gc.collect()
        gc.freeze()
        gc.disable()
        while True:
            try:
                message = job_conn.recv()
            except (EOFError, OSError):
                break  # parent gone: nothing left to serve
            if not isinstance(message, tuple) or message[0] != "job":
                break  # ("stop",) or anything unexpected
            _, job, job_key, attempt = message
            try:
                # Span opens before fault injection (see _attempt_entry):
                # a crash/timeout/stall fault must die mid-span so the
                # supervisor's synthesized-abort path is exercised.
                with obs_profile.maybe_profile(f"{job_key}-attempt{attempt}"):
                    with obs_spans.span("attempt", key=job_key, attempt=attempt):
                        fault = maybe_inject_fault(job_key, attempt)
                        if fault == "crash":
                            os._exit(13)
                        if fault == "timeout":
                            time.sleep(3600.0)
                        if fault == "stall":
                            result_conn.send(("hb", 0, 0, 0.0))
                            time.sleep(3600.0)
                        if fault == "error":
                            raise SimulationError(
                                f"injected fault ({job_key}, attempt {attempt})"
                            )
                        if fault == "state-corrupt":
                            from repro.sim import sanitizer as _sanitizer

                            _sanitizer.schedule_state_corruption()
                        result = run_one(job)
                        if fault == "corrupt":
                            result = _corrupted(result)
                result_conn.send(("ok", result))
            except SimulationError as exc:
                result_conn.send(("err", type(exc).__name__, str(exc)))
            except BaseException as exc:  # classify unexpected worker bugs too
                result_conn.send(("err", "SimulationError", f"{type(exc).__name__}: {exc}"))
            gc.collect()
    finally:
        set_heartbeat_sink(None)
        result_conn.close()
        job_conn.close()


@dataclass
class _PoolWorker:
    process: multiprocessing.process.BaseProcess
    job_conn: multiprocessing.connection.Connection  # parent -> worker
    result_conn: multiprocessing.connection.Connection  # worker -> parent
    #: affinity group this worker is currently serving.
    group: Optional[str] = None
    #: in-flight job as (job, key, attempt), or None when idle.
    current: Optional[Tuple[Any, str, int]] = None
    deadline: Optional[float] = None
    last_beat: float = 0.0
    progress: Optional[Tuple[int, int, float]] = None
    jobs_done: int = 0
    #: forwarded span begins not yet matched by an end (see _Attempt).
    open_spans: Dict[str, Dict[str, Any]] = field(default_factory=dict)


def _run_pool(
    jobs: Sequence[Any],
    run_one: Callable[[Any], Any],
    *,
    context: multiprocessing.context.BaseContext,
    workers: int,
    policy: RetryPolicy,
    key: Callable[[Any], str],
    group: Optional[Callable[[Any], str]],
    validate: Optional[Callable[[Any], None]],
    progress: Optional[Callable[[int, int, str, str], None]],
    heartbeat: Optional[Callable[[str, int, int, float], None]],
    child_setup: Optional[Callable[[], None]],
    span: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> CampaignReport:
    """Warm-pool dispatcher: long-lived workers drain the job queue.

    Jobs are bucketed into affinity groups (``group(job)``, defaulting
    to the job key) in first-appearance order; a worker sticks to its
    group until it is empty, then claims the next untouched group, and
    at the tail helps whichever in-progress group has the most work
    left, so one straggler group never serialises the finish.

    Crash isolation matches attempt mode: a dead worker charges only
    its in-flight job one attempt and is recycled (a replacement spawns
    while undispatched work remains).  Retryable pooled failures are
    re-run through the per-attempt supervisor with ``attempt_offset=1``
    so absolute attempt numbers — and with them fault-injection and
    backoff hashes — stay identical to a pure per-attempt campaign.
    """
    report = CampaignReport()
    total = len(jobs)
    group_of = group or key
    groups: Dict[str, List[Tuple[Any, str]]] = {}
    for job in jobs:
        groups.setdefault(group_of(job), []).append((job, key(job)))
    order = list(groups)
    claimed: set = set()
    #: pooled first attempts that failed retryably, for the fallback.
    fallback: List[Tuple[Any, str]] = []
    pool: List[_PoolWorker] = []

    def _spawn_worker() -> _PoolWorker:
        job_recv, job_send = context.Pipe(duplex=False)
        result_recv, result_send = context.Pipe(duplex=False)
        process = context.Process(
            target=_pool_worker_entry,
            args=(job_recv, result_send, run_one, child_setup, span is not None),
        )
        process.start()
        job_recv.close()
        result_send.close()
        worker = _PoolWorker(
            process, job_send, result_recv, last_beat=time.monotonic()
        )
        pool.append(worker)
        return worker

    def _take_next(worker: _PoolWorker) -> Optional[Tuple[Any, str]]:
        queue = groups.get(worker.group or "")
        if not queue:
            for name in order:  # claim the next untouched group
                if name not in claimed and groups[name]:
                    claimed.add(name)
                    worker.group = name
                    queue = groups[name]
                    break
            else:  # tail: help the in-progress group with the most left
                name = max(
                    (g for g in order if groups[g]),
                    key=lambda g: len(groups[g]),
                    default=None,
                )
                if name is None:
                    return None
                worker.group = name
                queue = groups[name]
        return queue.pop(0)

    def _dispatch(worker: _PoolWorker) -> bool:
        """Hand the worker its next job; False when idle or send failed."""
        item = _take_next(worker)
        if item is None:
            return False
        job, job_key = item
        try:
            worker.job_conn.send(("job", job, job_key, 1))
        except (BrokenPipeError, OSError):
            # The worker died before we noticed; put the job back (it
            # was never attempted) and let the sentinel path recycle.
            groups[group_of(job)].insert(0, item)
            return False
        now = time.monotonic()
        worker.current = (job, job_key, 1)
        worker.deadline = now + policy.timeout if policy.timeout else None
        worker.last_beat = now
        worker.progress = None
        return True

    def _charge(worker: _PoolWorker, error: SimulationError) -> None:
        """The in-flight job's pooled attempt failed: fallback or fail."""
        job, job_key, attempt = worker.current
        worker.current = None
        worker.deadline = None
        if policy.retries >= 1 and is_retryable(error):
            fallback.append((job, job_key))
        else:
            report.failures.append(
                JobFailure(job_key, type(error).__name__, str(error), attempt)
            )
            if progress is not None:
                progress(report.executed + report.failed, total, job_key, "FAILED")

    def _complete(worker: _PoolWorker, result: Any) -> None:
        job, job_key, _ = worker.current
        if validate is not None:
            try:
                validate(result)
            except Exception as exc:
                _charge(worker, CorruptResult(f"{job_key}: {exc}"))
                return
        worker.current = None
        worker.deadline = None
        worker.jobs_done += 1
        report.completed[job_key] = result
        if progress is not None:
            progress(report.executed + report.failed, total, job_key, "ok")

    def _on_beat(worker: _PoolWorker) -> Callable[[int, int, float], None]:
        def update(done: int, n: int, sim_time: float) -> None:
            worker.last_beat = time.monotonic()
            worker.progress = (done, n, sim_time)
            if heartbeat is not None and worker.current is not None:
                heartbeat(worker.current[1], done, n, sim_time)

        return update

    def _on_span(
        worker: _PoolWorker,
    ) -> Optional[Callable[[Dict[str, Any]], None]]:
        if span is None:
            return None

        def forward(event: Dict[str, Any]) -> None:
            if event.get("ev") == "begin":
                worker.open_spans[event["span"]] = event
            elif event.get("ev") == "end":
                worker.open_spans.pop(event.get("span"), None)
            span(event)

        return forward

    def _abort_spans(worker: _PoolWorker) -> None:
        """Synthesize ``aborted`` ends for spans the worker left open.

        A worker that crashed or was killed between a span's begin and
        end would otherwise leave a dangling span in the merged trace;
        the supervisor closes them on the worker's behalf, marked
        ``synthesized`` so analysis can tell them from real ends.
        """
        if span is not None:
            for begin in worker.open_spans.values():
                span(obs_spans.synthesize_abort(begin))
        worker.open_spans.clear()

    def _retire(worker: _PoolWorker) -> None:
        """Remove one dead worker from the pool and reap it."""
        pool.remove(worker)
        worker.job_conn.close()
        worker.result_conn.close()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def _recycle() -> None:
        """Replace lost capacity while undispatched work remains."""
        while any(groups.values()) and len(pool) < workers:
            worker = _spawn_worker()
            report.recycled += 1
            if not _dispatch(worker):
                break

    def _kill(worker: _PoolWorker, error: SimulationError) -> None:
        """Terminate one overdue/stalled worker, charge its job, recycle."""
        worker.process.terminate()
        _abort_spans(worker)
        _charge(worker, error)
        _retire(worker)
        _recycle()

    try:
        for _ in range(min(workers, total)):
            _spawn_worker()
        for worker in list(pool):
            _dispatch(worker)

        while any(groups.values()) or any(w.current for w in pool):
            if shutdown_requested():
                report.interrupted = True
                break
            if (
                policy.max_failures is not None
                and report.failed >= policy.max_failures
            ):
                report.aborted = (
                    f"stopped after {report.failed} permanent failure(s) "
                    f"(max-failures={policy.max_failures})"
                )
                break
            now = time.monotonic()
            # Watchdog: wall-clock deadlines and heartbeat stalls, for
            # workers with a job in flight only.  Drain first so a
            # final payload (or fresh beat) racing the check wins.
            for worker in list(pool):
                if worker.current is None:
                    continue
                overdue = worker.deadline is not None and now > worker.deadline
                stalled = (
                    policy.stall_timeout is not None
                    and now - worker.last_beat > policy.stall_timeout
                )
                if not (overdue or stalled):
                    continue
                payload = _drain_pipe(
                    worker.result_conn, _on_beat(worker), _on_span(worker)
                )
                if payload is not None and payload is not _EOF:
                    if payload[0] == "ok":
                        _complete(worker, payload[1])
                    else:
                        _charge(worker, _rebuild_error(payload[1], payload[2]))
                    _dispatch(worker)
                    continue
                if payload is _EOF:
                    continue  # the sentinel path below will handle the death
                if overdue:
                    attempt_no = worker.current[2]
                    error: SimulationError = JobTimeout(
                        f"attempt exceeded {policy.timeout:.3g}s "
                        f"(attempt {attempt_no})"
                    )
                elif now - worker.last_beat <= policy.stall_timeout:
                    continue  # the drain picked up a fresh heartbeat
                else:
                    reached = (
                        f"; last progress {worker.progress[0]}/{worker.progress[1]}"
                        f" accesses at sim time {worker.progress[2]:.0f}"
                        if worker.progress is not None
                        else " before the first heartbeat"
                    )
                    error = StallTimeout(
                        f"no heartbeat for {policy.stall_timeout:.3g}s "
                        f"(attempt {worker.current[2]}){reached}"
                    )
                _kill(worker, error)

            if not pool:
                _recycle()
                if not pool:
                    break  # no capacity and nothing recyclable
                continue

            wait_for = 0.2
            now = time.monotonic()
            deadlines = [w.deadline for w in pool if w.deadline is not None]
            if policy.stall_timeout is not None:
                deadlines += [
                    w.last_beat + policy.stall_timeout
                    for w in pool
                    if w.current is not None
                ]
            if deadlines:
                wait_for = min(wait_for, max(min(deadlines) - now, 0.0) + 0.001)
            fired = multiprocessing.connection.wait(
                [w.result_conn for w in pool]
                + [w.process.sentinel for w in pool],
                timeout=wait_for,
            )
            if not fired:
                continue
            for worker in list(pool):
                conn_fired = worker.result_conn in fired
                sentinel_fired = worker.process.sentinel in fired
                if not (conn_fired or sentinel_fired):
                    continue
                payload = _drain_pipe(
                    worker.result_conn, _on_beat(worker), _on_span(worker)
                )
                if payload is None and sentinel_fired:
                    # One more drain catches a final payload racing the
                    # sentinel; anything else is a worker death.
                    payload = _drain_pipe(
                        worker.result_conn, _on_beat(worker), _on_span(worker)
                    )
                if payload is None and sentinel_fired:
                    payload = _EOF
                if payload is _EOF:
                    worker.process.join(timeout=5.0)
                    _abort_spans(worker)
                    if worker.current is not None:
                        code = worker.process.exitcode
                        _charge(
                            worker, WorkerCrash(f"worker exited with code {code}")
                        )
                    _retire(worker)
                    _recycle()
                elif payload is not None:
                    if payload[0] == "ok":
                        _complete(worker, payload[1])
                    else:
                        _charge(worker, _rebuild_error(payload[1], payload[2]))
                    _dispatch(worker)
                # else: heartbeats only — the worker is alive and working.
    finally:
        stopping_early = report.interrupted or report.aborted is not None
        for worker in pool:
            try:
                worker.job_conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in pool:
            if stopping_early and worker.process.is_alive():
                # A mid-job worker only reads the stop message between
                # jobs; don't wait out its simulation on a shutdown.
                worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.kill()
                worker.process.join(timeout=2.0)
            _abort_spans(worker)
            worker.job_conn.close()
            worker.result_conn.close()

    if fallback and not (report.interrupted or report.aborted):
        # Per-attempt mode is the retry path: each fallback job already
        # burned attempt 1 in the pool, so the sub-supervisor numbers
        # its attempts from 2 (attempt_offset=1) and inherits the full
        # remaining retry budget.
        report.retried += len(fallback)
        settled = report.executed + report.failed
        sub_progress: Optional[Callable[[int, int, str, str], None]] = None
        if progress is not None:
            def sub_progress(done: int, _sub_total: int, job_key: str, status: str) -> None:
                progress(settled + done, total, job_key, status)

        sub = run_supervised(
            [job for job, _ in fallback],
            run_one,
            workers=min(workers, len(fallback)),
            policy=policy,
            key=key,
            validate=validate,
            progress=sub_progress,
            heartbeat=heartbeat,
            child_setup=child_setup,
            span=span,
            mode="attempt",
            attempt_offset=1,
        )
        report.merge(sub)
    return report


def run_supervised(
    jobs: Sequence[Any],
    run_one: Callable[[Any], Any],
    *,
    workers: int = 0,
    policy: Optional[RetryPolicy] = None,
    key: Optional[Callable[[Any], str]] = None,
    validate: Optional[Callable[[Any], None]] = None,
    progress: Optional[Callable[[int, int, str, str], None]] = None,
    heartbeat: Optional[Callable[[str, int, int, float], None]] = None,
    child_setup: Optional[Callable[[], None]] = None,
    in_process: Optional[bool] = None,
    mode: Optional[str] = None,
    group: Optional[Callable[[Any], str]] = None,
    attempt_offset: int = 0,
    span: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> CampaignReport:
    """Run ``run_one`` over ``jobs`` under supervision; never raises.

    Two worker modes (``mode``, or ``REPRO_WORKER_MODE``, default
    ``attempt``).  In **attempt** mode each attempt runs in its own
    short-lived process, so a crash loses one attempt and nothing else.
    In **pool** mode (:func:`_run_pool`) long-lived workers drain the
    queue with affinity to ``group(job)`` and retryable failures fall
    back to attempt mode; crash isolation is identical.  Failed
    attempts retry up to ``policy.retries`` times with exponential
    backoff + jitter — except :class:`InvariantViolation`, which is
    deterministic and fails the job immediately.  Jobs that exhaust the
    budget land in the report's ``failures``, the rest in ``completed``
    (keyed by ``key(job)``).  ``attempt_offset`` shifts absolute
    attempt numbering (the pool fallback uses it; campaigns should
    leave it 0).

    Workers stream progress heartbeats over the result pipe (published
    by the simulation loop via :func:`emit_heartbeat`).  The watchdog
    uses them two ways: ``policy.stall_timeout`` kills an attempt that
    goes silent for that many seconds (a *stall* timeout — a slow but
    heartbeating job is left alone), and ``heartbeat`` (if given) is
    called in the parent as ``(key, done, total, sim_time)`` so
    campaigns can checkpoint mid-run progress markers.

    ``validate`` (if given) runs in the parent on every returned
    result; a validation error is classified :class:`CorruptResult`
    and retried like any other failure.  ``child_setup`` runs first
    inside every worker (campaigns use it to silence per-worker store
    writes).  ``progress`` is called as ``(done, total, key, status)``
    after each job settles.  ``in_process`` forces (or forbids) the
    serial fallback; by default it is used when no start method works.

    ``span`` (if given) receives every observability span event the
    workers forward over their result pipes (:mod:`repro.obs.spans`
    dicts, in arrival order) — campaigns pass a
    :meth:`TraceCollector.add <repro.obs.spans.TraceCollector>` here to
    merge all workers' spans into one trace.  If a worker dies or is
    killed with spans open, the supervisor synthesizes ``aborted`` end
    events for them so the merged trace never contains a dangling span.
    In the in-process fallback workers emit straight to the active span
    sink instead and ``span`` is unused.
    """
    policy = policy or RetryPolicy()
    key = key or (lambda job: repr(job))
    jobs = list(jobs)
    if not jobs:
        return CampaignReport()
    mode = resolve_worker_mode(mode)

    context = None if in_process else supervision_context()
    if context is None:
        if in_process is False:
            raise SimulationError("multiprocessing unavailable and in_process=False")
        return _run_in_process(
            jobs, run_one, key, policy, validate, progress, heartbeat,
            attempt_offset=attempt_offset,
        )

    workers = min(default_workers(workers), len(jobs))
    if mode == "pool" and attempt_offset == 0:
        return _run_pool(
            jobs,
            run_one,
            context=context,
            workers=workers,
            policy=policy,
            key=key,
            group=group,
            validate=validate,
            progress=progress,
            heartbeat=heartbeat,
            child_setup=child_setup,
            span=span,
        )

    report = CampaignReport()
    total = len(jobs)
    # (job, key, next attempt number, earliest start time)
    ready: List[Tuple[Any, str, int, float]] = [
        (job, key(job), attempt_offset + 1, 0.0) for job in jobs
    ]
    running: List[_Attempt] = []

    def _spawn(job: Any, job_key: str, attempt: int) -> None:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_attempt_entry,
            args=(
                child_conn, run_one, job, job_key, attempt, child_setup,
                span is not None,
            ),
        )
        process.start()
        child_conn.close()
        started = time.monotonic()
        deadline = started + policy.timeout if policy.timeout else None
        running.append(
            _Attempt(
                process, parent_conn, job, job_key, attempt, deadline,
                last_beat=started,
            )
        )

    def _settle(attempt: _Attempt, error: SimulationError) -> None:
        """One attempt failed: requeue with backoff or record the failure."""
        if attempt.attempt <= policy.retries and is_retryable(error):
            report.retried += 1
            not_before = time.monotonic() + policy.backoff(
                attempt.key, attempt.attempt + 1
            )
            ready.append((attempt.job, attempt.key, attempt.attempt + 1, not_before))
        else:
            report.failures.append(
                JobFailure(attempt.key, type(error).__name__, str(error), attempt.attempt)
            )
            if progress is not None:
                progress(report.executed + report.failed, total, attempt.key, "FAILED")

    def _drain(attempt: _Attempt) -> Any:
        """Consume queued pipe messages from one attempt.

        Heartbeats update the attempt's watchdog state (and are
        forwarded to the ``heartbeat`` callback); see
        :func:`_drain_pipe` for the return convention.
        """

        def on_beat(done: int, n: int, sim_time: float) -> None:
            attempt.last_beat = time.monotonic()
            attempt.progress = (done, n, sim_time)
            if heartbeat is not None:
                heartbeat(attempt.key, done, n, sim_time)

        on_span = None
        if span is not None:
            def on_span(event: Dict[str, Any]) -> None:
                if event.get("ev") == "begin":
                    attempt.open_spans[event["span"]] = event
                elif event.get("ev") == "end":
                    attempt.open_spans.pop(event.get("span"), None)
                span(event)

        return _drain_pipe(attempt.conn, on_beat, on_span)

    def _abort_spans(attempt: _Attempt) -> None:
        """Close spans a dead/killed attempt left open (see _run_pool)."""
        if span is not None:
            for begin in attempt.open_spans.values():
                span(obs_spans.synthesize_abort(begin))
        attempt.open_spans.clear()

    def _finish(attempt: _Attempt, payload: Any) -> None:
        """Remove one finished/dead attempt and classify its outcome."""
        running.remove(attempt)
        attempt.conn.close()
        attempt.process.join(timeout=5.0)
        _abort_spans(attempt)
        if payload is None or payload is _EOF:
            code = attempt.process.exitcode
            _settle(attempt, WorkerCrash(f"worker exited with code {code}"))
            return
        if payload[0] == "err":
            _settle(attempt, _rebuild_error(payload[1], payload[2]))
            return
        result = payload[1]
        if validate is not None:
            try:
                validate(result)
            except Exception as exc:
                _settle(attempt, CorruptResult(f"{attempt.key}: {exc}"))
                return
        report.completed[attempt.key] = result
        if progress is not None:
            progress(report.executed + report.failed, total, attempt.key, "ok")

    def _kill(attempt: _Attempt, error: SimulationError) -> None:
        """Terminate one overdue/stalled attempt and settle it."""
        attempt.process.terminate()
        attempt.process.join(timeout=5.0)
        if attempt.process.is_alive():  # pragma: no cover - stuck worker
            attempt.process.kill()
            attempt.process.join(timeout=5.0)
        running.remove(attempt)
        attempt.conn.close()
        _abort_spans(attempt)
        _settle(attempt, error)

    try:
        while ready or running:
            if shutdown_requested():
                report.interrupted = True
                break
            if (
                policy.max_failures is not None
                and report.failed >= policy.max_failures
            ):
                report.aborted = (
                    f"stopped after {report.failed} permanent failure(s) "
                    f"(max-failures={policy.max_failures})"
                )
                break
            now = time.monotonic()
            # Launch whatever is ready while worker slots are free.
            ready.sort(key=lambda item: item[3])
            while ready and len(running) < workers and ready[0][3] <= now:
                job, job_key, attempt, _ = ready.pop(0)
                _spawn(job, job_key, attempt)

            if not running:
                # Everything pending is backing off; sleep until the next one.
                time.sleep(max(ready[0][3] - now, 0.0) + 0.001)
                continue

            # Enforce the watchdog: wall-clock deadlines and heartbeat
            # stalls.  Drain first so a final payload (or a fresh beat)
            # that raced the check wins over the kill.
            now = time.monotonic()
            killed = False
            for attempt in list(running):
                overdue = attempt.deadline is not None and now > attempt.deadline
                stalled = (
                    policy.stall_timeout is not None
                    and now - attempt.last_beat > policy.stall_timeout
                )
                if not (overdue or stalled):
                    continue
                payload = _drain(attempt)
                if payload is not None and payload is not _EOF:
                    _finish(attempt, payload)
                    continue
                if overdue:
                    error: SimulationError = JobTimeout(
                        f"attempt exceeded {policy.timeout:.3g}s "
                        f"(attempt {attempt.attempt})"
                    )
                elif now - attempt.last_beat <= policy.stall_timeout:
                    continue  # the drain picked up a fresh heartbeat
                else:
                    reached = (
                        f"; last progress {attempt.progress[0]}/{attempt.progress[1]}"
                        f" accesses at sim time {attempt.progress[2]:.0f}"
                        if attempt.progress is not None
                        else " before the first heartbeat"
                    )
                    error = StallTimeout(
                        f"no heartbeat for {policy.stall_timeout:.3g}s "
                        f"(attempt {attempt.attempt}){reached}"
                    )
                _kill(attempt, error)
                killed = True
            if killed:
                continue

            # Wait for a message, a worker death, or the nearest deadline.
            wait_for = 0.2
            deadlines = [a.deadline for a in running if a.deadline is not None]
            if policy.stall_timeout is not None:
                deadlines += [a.last_beat + policy.stall_timeout for a in running]
            if deadlines:
                wait_for = min(wait_for, max(min(deadlines) - now, 0.0) + 0.001)
            sentinels = [a.process.sentinel for a in running]
            fired = multiprocessing.connection.wait(
                [a.conn for a in running] + sentinels, timeout=wait_for
            )
            if not fired:
                continue
            for attempt in list(running):
                conn_fired = attempt.conn in fired
                sentinel_fired = attempt.process.sentinel in fired
                if not (conn_fired or sentinel_fired):
                    continue
                payload = _drain(attempt)
                if payload is None and sentinel_fired:
                    # The process exited; one more drain catches a final
                    # payload racing the sentinel, else it's a crash.
                    payload = _drain(attempt)
                    _finish(attempt, payload)
                elif payload is not None:
                    _finish(attempt, None if payload is _EOF else payload)
                # else: heartbeats only — the worker is alive and working.
    finally:
        for attempt in running:  # interrupted: never leak worker processes
            attempt.process.terminate()
            attempt.process.join(timeout=2.0)
            if attempt.process.is_alive():  # pragma: no cover - stuck worker
                attempt.process.kill()
                attempt.process.join(timeout=2.0)
            _abort_spans(attempt)
            attempt.conn.close()
    return report
