"""The N-core interleaving engine: private L1s over a shared L2.

Machine model
-------------
Each core owns the private half of the paper's Table 1 machine — L1D,
L1I, MSHR file, prefetcher (THT always private; the PHT can be shared
at the runner's discretion) — while the L2 data/instruction caches,
the L1/L2 bus, the L2/memory bus, and DRAM are one physical instance
shared by every core.  :class:`CoreHierarchy` realises this by
aliasing the shared components out of a :class:`SharedFabric` after
normal construction; every inherited access path (demand, prefetch,
ifetch, writeback) then contends on the shared schedule automatically.

Address disjointness
--------------------
Core ``c``'s addresses and PCs are offset by ``c << CORE_ADDR_BITS``
(bit 44 — far above every index bit in the hierarchy).  Consequences:

* index functions are unchanged, so each stream maps onto the shared
  L2 sets exactly as it would alone (set *contention* is real);
* tags differ across cores, so streams never alias (no false sharing
  of lines, and the per-core conservation laws stay exact);
* core 0's offset is zero, so a 1-core mix performs bit-for-bit the
  same hierarchy calls as the single-core engine — the differential
  oracle the test suite pins.

Interleaving rule
-----------------
The scheduler steps one memory access at a time on the core whose
core-local dispatch clock is smallest, tie-broken by benchmark name
and then core id.  The name in the key makes distinct-benchmark mixes
*permutation-equivariant*: reordering the core slots reorders which
core performs each global event but not the event sequence itself, so
per-core statistics follow the permutation exactly.

Shared-L2 ownership
-------------------
``SharedFabric.owner`` maps each resident L2D line ``(set, tag)`` to
the core that filled it.  Every fill goes through the overridden
:meth:`CoreHierarchy._fill_l2`, and — because the demand path fills
only after an L2 miss and the prefetch path probes first — a fill
always inserts a non-resident line, so the owner map is an exact
bijection with the resident lines (the sanitizer's shared-L2
invariant).  Eviction accounting is charged to the *owner* of the
victim line, which keeps the per-core prefetch conservation law
(issued == useful + evicted unused + residual unused) exact even when
another core's fill performs the eviction; cross-core evictions are
additionally recorded as interference attribution.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.core import CoreParams, CoreResult
from repro.engine.probes import CoreMark, Probe
from repro.memory.bus import Bus
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy
from repro.multicore.results import CoreAttribution
from repro.workloads.trace import Trace

__all__ = [
    "CORE_ADDR_BITS",
    "AttributedBus",
    "CoreHierarchy",
    "CoreRunner",
    "SharedFabric",
    "offset_trace",
    "run_cores",
]

#: bit position of the per-core address offset.  Must sit above every
#: index bit of every cache level (the L2's top index bit is ~18) and
#: leave room for 2**20 cores below the uint64 ceiling.
CORE_ADDR_BITS = 44


def offset_trace(trace: Trace, core_id: int) -> Trace:
    """``trace`` relocated into core ``core_id``'s address space.

    Core 0 gets the trace object back untouched (bit-identity with the
    single-core engine); other cores get copies with addresses and PCs
    offset by ``core_id << CORE_ADDR_BITS``.
    """
    if core_id == 0:
        return trace
    if len(trace) and int(trace.addrs.max()) >> CORE_ADDR_BITS:
        raise ValueError(
            f"trace {trace.name!r} addresses collide with the per-core "
            f"offset space (>= 2**{CORE_ADDR_BITS})"
        )
    offset = np.uint64(core_id) << np.uint64(CORE_ADDR_BITS)
    return Trace(
        name=trace.name,
        addrs=trace.addrs.astype(np.uint64) + offset,
        pcs=trace.pcs.astype(np.uint64) + offset,
        is_load=trace.is_load,
        gaps=trace.gaps,
        deps=trace.deps,
        base_ipc=trace.base_ipc,
    )


class AttributedBus:
    """Per-core view of a shared :class:`~repro.memory.bus.Bus`.

    Timing-transparent: every call delegates to the underlying bus, so
    the schedule is identical to calling the bus directly.  The wrapper
    only *observes* — before delegating it reads the shared
    ``next_free`` and books the queueing delay this core is about to
    pay into its :class:`~repro.multicore.results.CoreAttribution`
    (``bus_stall_cycles``), which is how bus interference is attributed
    per core without touching the bus model.
    """

    __slots__ = ("_bus", "_attribution")

    def __init__(self, bus: Bus, attribution: CoreAttribution) -> None:
        self._bus = bus
        self._attribution = attribution

    def request(self, now: float, payload_bytes: int) -> float:
        wait = self._bus.next_free - now
        if wait > 0.0:
            self._attribution.bus_stall_cycles += wait
        return self._bus.request(now, payload_bytes)

    def transfer(self, now: float, payload_bytes: int) -> float:
        wait = self._bus.next_free - now
        if wait > 0.0:
            self._attribution.bus_stall_cycles += wait
        return self._bus.transfer(now, payload_bytes)

    # Read-only passthroughs for observers (sanitizer bus monotonicity,
    # metrics probe totals).
    @property
    def name(self) -> str:
        return self._bus.name

    @property
    def next_free(self) -> float:
        return self._bus.next_free

    @property
    def transfers(self) -> int:
        return self._bus.transfers

    @property
    def busy_cycles(self) -> float:
        return self._bus.busy_cycles

    @property
    def queued_cycles(self) -> float:
        return self._bus.queued_cycles


class SharedFabric:
    """The components all cores share, plus L2 ownership tracking."""

    def __init__(self, params: HierarchyParams, cores: int) -> None:
        if cores < 1:
            raise ValueError(f"a fabric needs at least one core, got {cores}")
        self.params = params
        self.cores = cores
        # Build one donor hierarchy and strip the shared pieces out of
        # it: this reuses the exact construction (bus widths, memory
        # concurrency, geometry) of the single-core machine.
        donor = MemoryHierarchy(params)
        self.l2d = donor.l2d
        self.l2i = donor.l2i
        self.l1l2_addr_bus = donor.l1l2_addr_bus
        self.l1l2_data_bus = donor.l1l2_data_bus
        self.mem_addr_bus = donor.mem_addr_bus
        self.mem_data_bus = donor.mem_data_bus
        self.memory = donor.memory
        self.prefetch_bus = donor.prefetch_bus
        #: (l2 set index, l2 tag) -> core id of the line's filler.
        self.owner: Dict[Tuple[int, int], int] = {}
        self.hierarchies: List["CoreHierarchy"] = []
        self.attributions: List[CoreAttribution] = [
            CoreAttribution() for _ in range(cores)
        ]
        self._finalized = False

    def register(self, hierarchy: "CoreHierarchy") -> None:
        if hierarchy.core_id != len(self.hierarchies):
            raise ValueError(
                f"cores must register in id order: got {hierarchy.core_id}, "
                f"expected {len(self.hierarchies)}"
            )
        self.hierarchies.append(hierarchy)

    def resident_line_count(self) -> int:
        """Total lines resident in the shared L2D (full scan)."""
        total = 0
        for index in range(self.params.l2.sets):
            total += len(self.l2d.resident_lines(index))
        return total

    def finalize(self) -> None:
        """One shared end-of-run scan over the L2D.

        Replaces the per-core :meth:`MemoryHierarchy.finalize` scan:
        residual unused prefetches are attributed to the *owner* of
        each line (completing that core's prefetch conservation law),
        and end-of-run occupancy shares are computed per core.
        Idempotent — every core's ``finalize()`` delegates here, and
        only the first call does the work.
        """
        if self._finalized:
            return
        self._finalized = True
        counts = [0] * self.cores
        total = 0
        owner_of = self.owner.get
        for index in range(self.params.l2.sets):
            for line in self.l2d.resident_lines(index):
                owner = owner_of((index, line.tag), 0)
                counts[owner] += 1
                total += 1
                if line.prefetched:
                    self.hierarchies[owner].stats.prefetch_residual_unused += 1
        for core_id, attribution in enumerate(self.attributions):
            attribution.l2_lines_owned = counts[core_id]
            attribution.l2_occupancy_share = (
                counts[core_id] / total if total else 0.0
            )


class CoreHierarchy(MemoryHierarchy):
    """One core's hierarchy view: private L1/MSHR, shared L2 and below.

    Construction builds a normal single-core hierarchy, then aliases
    the L2 caches, buses, and DRAM to the fabric's shared instances
    (the L1/L2 links through per-core :class:`AttributedBus` wrappers
    so queueing delay is attributed).  All inherited logic — the
    demand fast path, prefetch issue, promotions, ifetch — then runs
    unmodified against the shared components.
    """

    __slots__ = ("core_id", "fabric", "attribution")

    def __init__(
        self, params: HierarchyParams, fabric: SharedFabric, core_id: int
    ) -> None:
        super().__init__(params)
        self.core_id = core_id
        self.fabric = fabric
        self.attribution = fabric.attributions[core_id]
        self.l2d = fabric.l2d
        self.l2i = fabric.l2i
        self.memory = fabric.memory
        self.mem_addr_bus = fabric.mem_addr_bus
        self.mem_data_bus = fabric.mem_data_bus
        self.l1l2_addr_bus = AttributedBus(fabric.l1l2_addr_bus, self.attribution)
        self.l1l2_data_bus = AttributedBus(fabric.l1l2_data_bus, self.attribution)
        if fabric.prefetch_bus is not None:
            self.prefetch_bus = AttributedBus(fabric.prefetch_bus, self.attribution)
        fabric.register(self)

    def _fill_l2(self, index: int, tag: int, now: float, prefetched: bool) -> None:
        """Shared-L2 fill with ownership tracking and owner-charged
        eviction accounting.

        Identical cache/bus/memory behaviour to the base method; the
        differences are purely in *attribution*: the evicted line's
        statistics (unused-prefetch fate, writeback count) are charged
        to the core that owns it, and a cross-core eviction increments
        both sides' interference counters.
        """
        lru_insert = prefetched and self.params.prefetch_insert_policy == "lru"
        eviction = self.l2d.fill(
            index, tag, now, prefetched=prefetched, lru_insert=lru_insert
        )
        fabric = self.fabric
        owners = fabric.owner
        if eviction is not None:
            victim_owner = owners.pop((index, eviction.line.tag), self.core_id)
            victim_stats = fabric.hierarchies[victim_owner].stats
            if eviction.line.prefetched:
                victim_stats.prefetch_evicted_unused += 1
                if victim_owner != self.core_id:
                    fabric.attributions[victim_owner].prefetches_evicted_by_others += 1
                    self.attribution.cross_core_evictions += 1
            if eviction.dirty:
                victim_stats.writebacks_l2 += 1
                self.memory.writeback(now, self._l2_block_bytes)
        owners[(index, tag)] = self.core_id

    def finalize(self) -> None:
        # The L2 is shared: exactly one residual scan for the whole
        # fabric, with per-owner attribution (idempotent).
        self.fabric.finalize()


class CoreRunner:
    """One core's trace walk as a resumable stream of accesses.

    The body of :meth:`repro.cpu.core.OutOfOrderCore.run` transcribed
    into a generator that yields the core-local dispatch clock after
    every access — the scheduler's interleaving key.  The float-op
    sequence is kept identical to the reference loop so a 1-core mix
    is bit-identical to the single-core engine.
    """

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        hierarchy: CoreHierarchy,
        params: CoreParams,
        warmup: int = 0,
        probes: Optional[Sequence[Probe]] = None,
    ) -> None:
        n = len(trace)
        if not 0 <= warmup < max(n, 1):
            raise ValueError(f"warmup ({warmup}) must be < trace length ({n})")
        self.core_id = core_id
        self.workload = trace.name
        self.trace = trace
        self.hierarchy = hierarchy
        self.params = params
        self.warmup = warmup
        self.probes = tuple(probes or ())
        self.clock = float(params.frontend_depth)
        self.result: Optional[CoreResult] = None
        self._gen = self._run()

    def step(self) -> bool:
        """Advance one access; False when the core has finished."""
        try:
            self.clock = next(self._gen)
            return True
        except StopIteration:
            return False

    def _run(self):
        params = self.params
        trace = self.trace
        hierarchy = self.hierarchy
        warmup = self.warmup
        active_probes = self.probes
        n = len(trace)
        if n == 0:
            self.result = CoreResult(0, 0.0, 0)
            return

        geometry = hierarchy.params.l1d
        blocks_arr, indices_arr, tags_arr = geometry.decompose_array(trace.addrs)
        max_dep = int(trace.deps.max()) if n else 0
        blocks = blocks_arr.tolist()
        indices = indices_arr.tolist()
        tags = tags_arr.tolist()
        gaps = trace.gaps.tolist()
        deps = trace.deps.tolist()
        is_load = trace.is_load.tolist()
        pcs = trace.pcs.tolist()
        model_icache = hierarchy.params.model_icache
        access_time = hierarchy.access_time
        ifetch = hierarchy.instruction_fetch
        ifetch_offset_bits = hierarchy.params.l1i.offset_bits
        last_ifetch_block = hierarchy._last_ifetch_block

        dispatch_rate = min(float(params.issue_width), trace.base_ipc)
        commit_rate = float(params.issue_width)
        window = params.window
        lsq = params.lsq
        ls_interval = 1.0 / params.ls_units

        ring = 1
        while ring < max(lsq, max_dep + 1, 512):
            ring <<= 1
        ring_mask = ring - 1
        completions = [0.0] * ring
        commits = [0.0] * ring

        rob: deque = deque()
        rob_append = rob.append
        rob_popleft = rob.popleft

        now_dispatch = float(params.frontend_depth)
        last_mem_issue = 0.0
        last_commit = 0.0
        instr_num = 0
        warmup_instr = 0
        warmup_commit = 0.0
        inv_commit_rate = 1.0 / commit_rate

        if active_probes:
            mark_interval = min(probe.interval for probe in active_probes)
            next_mark = mark_interval
        else:
            mark_interval = 0
            next_mark = n + 1

        for i in range(n):
            if i == warmup and warmup:
                warmup_instr = instr_num
                warmup_commit = last_commit
                hierarchy.mark_warmup_end()
            gap = gaps[i]
            instr_num += gap + 1

            # --- dispatch: frontend bandwidth + window occupancy ------
            now_dispatch += (gap + 1) / dispatch_rate
            window_floor = instr_num - window
            while rob and rob[0][0] <= window_floor:
                entry = rob_popleft()
                if entry[1] > now_dispatch:
                    now_dispatch = entry[1]
            if i >= lsq:
                lsq_release = commits[(i - lsq) & ring_mask]
                if lsq_release > now_dispatch:
                    now_dispatch = lsq_release

            if model_icache:
                pc = pcs[i]
                fetch_block = pc >> ifetch_offset_bits
                if fetch_block != last_ifetch_block:
                    last_ifetch_block = fetch_block
                    penalty = ifetch(now_dispatch, pc)
                    if penalty > 0.0:
                        now_dispatch += penalty

            # --- issue: LS-unit throughput + address dependence -------
            issue = now_dispatch
            if last_mem_issue + ls_interval > issue:
                issue = last_mem_issue + ls_interval
            dep = deps[i]
            if dep:
                data_ready = completions[(i - dep) & ring_mask]
                if data_ready > issue:
                    issue = data_ready
            last_mem_issue = issue

            # --- memory access ----------------------------------------
            load = is_load[i]
            completion = access_time(
                issue, indices[i], tags[i], blocks[i], not load, pcs[i]
            )
            if not load:
                completion = issue + 1.0
            completions[i & ring_mask] = completion

            # --- in-order commit --------------------------------------
            commit = last_commit + inv_commit_rate
            if completion > commit:
                commit = completion
            last_commit = commit
            commits[i & ring_mask] = commit
            rob_append((instr_num, commit))

            if i + 1 == next_mark:
                next_mark += mark_interval
                mark = CoreMark(i + 1, n, len(rob), window, last_commit, now_dispatch)
                for probe in active_probes:
                    probe.on_mark(mark, hierarchy)

            # Hand the interleaver this core's local frontend time: the
            # next access cannot dispatch before it.
            yield now_dispatch

        total_instructions = trace.instruction_count
        trailing = total_instructions - instr_num
        measured_instructions = total_instructions - warmup_instr
        cycles = last_commit + trailing / dispatch_rate - warmup_commit
        self.result = CoreResult(measured_instructions, cycles, n - warmup)


def run_cores(runners: Sequence[CoreRunner]) -> List[CoreResult]:
    """Interleave the cores to completion; per-core results in order.

    Scheduling: one access at a time on the core with the smallest
    ``(local clock, benchmark name, core id)`` key.  The comparison is
    pure — no randomness, no wall-clock — so the interleaving (and
    hence every shared-state mutation order) is a deterministic
    function of the mix.
    """
    if not runners:
        return []
    active = [runner for runner in runners if runner.result is None]
    while active:
        runner = min(
            active, key=lambda r: (r.clock, r.workload, r.core_id)
        )
        if not runner.step():
            active.remove(runner)
    results = []
    for runner in runners:
        if runner.result is None:
            raise RuntimeError(
                f"core {runner.core_id} finished without a result"
            )
        results.append(runner.result)
    return results
