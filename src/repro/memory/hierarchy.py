"""The simulated memory hierarchy of the paper's Table 1.

This module wires the caches, MSHRs, buses, and DRAM into the machine
the CPU timing model talks to:

* 32 KB direct-mapped L1 data cache, 32 B blocks, 64 MSHRs;
* 32 KB 4-way L1 instruction cache, 32 B blocks;
* separate 1 MB 4-way L2 instruction and data caches, 64 B blocks,
  12-cycle latency;
* 70-cycle main memory;
* a 32-byte-wide L1/L2 bus clocked at the core frequency, a narrower
  L2/memory bus, and (for the hybrid prefetcher of Section 5.2.2) an
  optional dedicated L1/L2 prefetch bus.

The hierarchy is also the observation point for prefetchers (Figure 10
of the paper): every L1 demand miss is reported to the attached
prefetcher, whose prefetch requests fill **L2 only** — except for the
hybrid's explicitly gated promotions into L1, which wait until the
dead-block predictor declares the victim line dead.

Statistics follow the paper's Figure 12 taxonomy of L2 accesses:

``prefetched original``
    demand L2 accesses that were covered by a prefetch (they hit on a
    block carrying the prefetch bit, or merge with an in-flight
    prefetch);
``non-prefetched original``
    the remaining demand L2 accesses;
``prefetched extra``
    prefetch work that never covered a demand access — redundant
    prefetches to resident blocks, prefetched blocks evicted unused,
    and prefetched blocks still unused when the run ends.

Engine layering
---------------
The hierarchy is the *engine* that drives the memory-system
:class:`~repro.engine.component.Component` objects (caches, MSHR file,
buses, DRAM, prefetcher).  Its per-access entry points come in two
flavours:

:meth:`MemoryHierarchy.access_time`
    The flat fast path the CPU loop calls: one function, locally bound
    component methods, geometry shifts/masks precomputed at
    construction, the direct-mapped L1 lookup inlined, and **no object
    allocation on the hit path** — it returns the bare completion time
    as a float.
:meth:`MemoryHierarchy.access`
    The structured wrapper tests and analysis passes use: same
    semantics, but classifies the access from the counter deltas and
    returns an :class:`~repro.engine.events.AccessOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.events import (
    AccessEvent,
    AccessOutcome,
    EvictionEvent,
    MissEvent,
)
from repro.memory.address import CacheGeometry, LevelMap
from repro.memory.bus import Bus
from repro.memory.cache import CacheLine, SetAssociativeCache
from repro.memory.dram import MainMemory
from repro.memory.mshr import MSHRFile
from repro.prefetchers.base import Prefetcher, PrefetchRequest

__all__ = [
    "AccessOutcome",
    "AccessResult",
    "HierarchyParams",
    "HierarchyStats",
    "MemoryHierarchy",
]

#: Gate deciding whether a pending L1 promotion may evict ``victim`` now.
#: Signature: (victim_line, set_index, now) -> bool.
L1PromotionGate = Callable[[object, int, float], bool]

#: Backwards-compatible name for the outcome of one demand access.
AccessResult = AccessOutcome


@dataclass(frozen=True)
class HierarchyParams:
    """Machine parameters (defaults reproduce the paper's Table 1)."""

    l1d: CacheGeometry = CacheGeometry(32 * 1024, 1, 32)
    l1i: CacheGeometry = CacheGeometry(32 * 1024, 4, 32)
    l2: CacheGeometry = CacheGeometry(1024 * 1024, 4, 64)
    l1_hit_latency: int = 2
    l2_hit_latency: int = 12
    memory_latency: int = 70
    l1l2_bus_bytes_per_cycle: int = 32
    mem_bus_bytes_per_cycle: int = 32
    mshr_entries: int = 64
    memory_concurrency: int = 12
    #: outstanding-prefetch cap; excess predictions are dropped (the
    #: "overflow the outgoing prefetch buffer" effect of Section 5.2.2).
    max_outstanding_prefetches: int = 32
    #: cycles between observing a miss and launching its prefetches.
    prefetch_issue_delay: int = 2
    #: prefetches have low priority: when the memory bus backlog exceeds
    #: this many cycles the prefetch is cancelled rather than queued
    #: behind demand traffic (Section 5.2.2: low-priority prefetches can
    #: be "delayed, canceled, superseded by accesses").
    prefetch_busy_threshold: float = 60.0
    #: a pending L1 promotion is abandoned after this many cycles: once
    #: the prediction horizon has passed, the demand access has already
    #: been served through the normal path and installing the block
    #: would only displace newer data.
    promotion_ttl: float = 8192.0
    #: recency position for prefetch fills in L2: "lru" (low-priority
    #: insertion — a useless prefetch is evicted first and cannot
    #: displace the demand working set) or "mru" (classic insertion).
    prefetch_insert_policy: str = "lru"
    #: dedicated L1/L2 prefetch bus (hybrid prefetcher only).
    dedicated_prefetch_bus: bool = False
    #: force every L2 data access to hit (the paper's Figure 1 study).
    ideal_l2: bool = False
    #: model the instruction-fetch path (L1I/L2I).
    model_icache: bool = True

    def __post_init__(self) -> None:
        if self.l2.block_bytes < self.l1d.block_bytes:
            raise ValueError("L2 blocks must be at least as large as L1 blocks")
        if self.l2.block_bytes % self.l1d.block_bytes != 0:
            raise ValueError("L2 block size must be a multiple of L1 block size")
        if self.prefetch_insert_policy not in ("lru", "mru"):
            raise ValueError(
                f"prefetch insert policy must be 'lru' or 'mru', "
                f"got {self.prefetch_insert_policy!r}"
            )


@dataclass(slots=True)
class HierarchyStats:
    """Counters accumulated over one simulation run."""

    demand_accesses: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_demand_accesses: int = 0
    l2_demand_hits: int = 0
    l2_demand_misses: int = 0
    prefetched_original: int = 0
    prefetches_requested: int = 0
    prefetches_issued: int = 0
    prefetch_redundant: int = 0
    prefetch_dropped_queue: int = 0
    prefetch_dropped_busy: int = 0
    prefetch_evicted_unused: int = 0
    prefetch_residual_unused: int = 0
    useful_prefetches: int = 0
    l1_promotions: int = 0
    l1_promotion_hits: int = 0
    writebacks_l1: int = 0
    writebacks_l2: int = 0
    ifetch_accesses: int = 0
    ifetch_misses: int = 0
    mshr_merges: int = 0
    mshr_full_stalls: int = 0

    def snapshot(self) -> "HierarchyStats":
        """Copy of the current counters (taken at the end of warmup)."""
        return HierarchyStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def since(self, warmup: "HierarchyStats") -> "HierarchyStats":
        """Counters accumulated after the ``warmup`` snapshot."""
        return HierarchyStats(
            **{
                f.name: getattr(self, f.name) - getattr(warmup, f.name)
                for f in fields(self)
            }
        )

    @property
    def non_prefetched_original(self) -> int:
        """Demand L2 accesses not covered by a prefetch."""
        return self.l2_demand_accesses - self.prefetched_original

    @property
    def prefetched_extra(self) -> int:
        """Prefetch work that never covered a demand access."""
        return (
            self.prefetch_redundant
            + self.prefetch_evicted_unused
            + self.prefetch_residual_unused
        )

    @property
    def l1_miss_rate(self) -> float:
        """L1D demand miss rate."""
        if self.demand_accesses == 0:
            return 0.0
        return self.l1_misses / self.demand_accesses

    @property
    def l2_demand_miss_rate(self) -> float:
        """L2 miss rate over demand accesses only."""
        if self.l2_demand_accesses == 0:
            return 0.0
        return self.l2_demand_misses / self.l2_demand_accesses

    def breakdown_vs_original(self) -> Dict[str, float]:
        """Figure 12's three categories, normalised to original accesses."""
        original = max(self.l2_demand_accesses, 1)
        return {
            "prefetched_original": self.prefetched_original / original,
            "non_prefetched_original": self.non_prefetched_original / original,
            "prefetched_extra": self.prefetched_extra / original,
        }


class MemoryHierarchy:
    """L1D/L1I + L2 + memory with buses, MSHRs, and a prefetch port."""

    __slots__ = (
        "params",
        "l1d", "l1i", "l2d", "l2i",
        "l1l2_addr_bus", "l1l2_data_bus", "mem_addr_bus", "mem_data_bus",
        "memory", "mshr", "prefetch_bus", "stats", "l1_l2_map",
        "_l2_shift", "_l2_index_mask", "_l2_index_bits",
        "_l1_latency", "_l2_latency", "_pf_delay",
        "_l1_block_bytes", "_l2_block_bytes",
        "_l1_index_bits", "_l1_set_mask", "_ideal_l2", "_l1_lines",
        "prefetcher", "_needs_access", "_needs_evict",
        "_l1_gate", "_promotions_enabled", "_pending_l1", "_pf_inflight",
        "_last_ifetch_block", "warmup_stats",
    )

    def __init__(self, params: Optional[HierarchyParams] = None) -> None:
        self.params = params or HierarchyParams()
        p = self.params
        self.l1d = SetAssociativeCache(p.l1d, "L1D")
        self.l1i = SetAssociativeCache(p.l1i, "L1I")
        self.l2d = SetAssociativeCache(p.l2, "L2D")
        self.l2i = SetAssociativeCache(p.l2, "L2I")
        # Split-transaction links: separate address (command) and data
        # channels per bus, so commands never queue behind data beats
        # scheduled for future return times.
        self.l1l2_addr_bus = Bus("L1/L2-addr", p.l1l2_bus_bytes_per_cycle)
        self.l1l2_data_bus = Bus("L1/L2-data", p.l1l2_bus_bytes_per_cycle)
        self.mem_addr_bus = Bus("L2/mem-addr", p.mem_bus_bytes_per_cycle)
        self.mem_data_bus = Bus("L2/mem-data", p.mem_bus_bytes_per_cycle)
        self.memory = MainMemory(
            p.memory_latency,
            self.mem_data_bus,
            self.mem_addr_bus,
            p.memory_concurrency,
            p.l2.block_bytes,
        )
        self.mshr = MSHRFile(p.mshr_entries)
        self.prefetch_bus: Optional[Bus] = None
        if p.dedicated_prefetch_bus:
            self.prefetch_bus = Bus("L1/L2-prefetch", p.l1l2_bus_bytes_per_cycle)
        self.stats = HierarchyStats()

        #: shared L1→L2 block-number mapping (demand, prefetch,
        #: promotion, and ifetch paths all split through it).
        self.l1_l2_map = LevelMap(p.l1d, p.l2)

        # Precomputed hot-path constants: geometry shifts/masks and
        # latencies are fixed at construction, so access_time() never
        # derives them per access.
        self._l2_shift = self.l1_l2_map.shift
        self._l2_index_mask = self.l1_l2_map.index_mask
        self._l2_index_bits = self.l1_l2_map.index_bits
        self._l1_latency = p.l1_hit_latency
        self._l2_latency = p.l2_hit_latency
        self._pf_delay = p.prefetch_issue_delay
        self._l1_block_bytes = p.l1d.block_bytes
        self._l2_block_bytes = p.l2.block_bytes
        self._l1_index_bits = p.l1d.index_bits
        self._l1_set_mask = p.l1d.sets - 1
        self._ideal_l2 = p.ideal_l2
        #: flat line array when the L1D is direct-mapped (the paper's
        #: configuration) — lets the fast path inline the lookup.
        self._l1_lines = self.l1d.direct_array()

        self.prefetcher: Optional[Prefetcher] = None
        self._needs_access = False
        self._needs_evict = False
        self._l1_gate: Optional[L1PromotionGate] = None
        self._promotions_enabled = False
        #: per-L1-set pending promotion: set index -> (l1 block, ready time)
        self._pending_l1: Dict[int, Tuple[int, float]] = {}
        #: completion times of in-flight prefetch fetches (bounded queue)
        self._pf_inflight: List[float] = []
        self._last_ifetch_block = -1
        #: snapshot of the counters at the end of warmup (None = no warmup).
        self.warmup_stats: Optional[HierarchyStats] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def attach_prefetcher(self, prefetcher: Optional[Prefetcher]) -> None:
        """Attach (or detach, with None) the prefetch engine."""
        self.prefetcher = prefetcher
        self._needs_access = bool(prefetcher and prefetcher.needs_access_stream)
        self._needs_evict = bool(prefetcher and prefetcher.needs_eviction_stream)
        gate = getattr(prefetcher, "l1_promotion_gate", None)
        self._l1_gate = gate
        self._promotions_enabled = gate is not None

    # ------------------------------------------------------------------
    # Demand access path
    # ------------------------------------------------------------------

    def access_time(
        self,
        now: float,
        index: int,
        tag: int,
        block: int,
        is_write: bool,
        pc: int,
    ) -> float:
        """Perform one demand data access; return its completion time.

        ``index``/``tag``/``block`` are the L1-geometry split of the
        address (precomputed by the simulator's vectorised front end).

        This is the engine's fast path: the whole demand sequence —
        promotion attempt, L1 lookup, access-stream observation, MSHR
        merge/acquire, L2 demand fetch, data return, L1 fill,
        prefetcher training — lives in this one function, working on
        constants bound at construction.  The common case (a
        direct-mapped L1 hit with no observer attached) touches one
        list slot and three counters and allocates nothing.
        """
        stats = self.stats
        stats.demand_accesses += 1
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1

        if self._promotions_enabled and self._pending_l1:
            self._try_promote(index, now)

        # --- L1 lookup (inlined single-way probe when direct-mapped) --
        lines = self._l1_lines
        if lines is not None:
            line = lines[index]
            if line is not None and line.tag == tag:
                line.last_access = now
                if is_write:
                    line.dirty = True
            else:
                line = None
        else:
            line = self.l1d.lookup(index, tag, is_write, now)

        if line is not None:
            stats.l1_hits += 1
            if self._promotions_enabled and line.prefetched:
                line.prefetched = False
                stats.l1_promotion_hits += 1
                # A hit on a promoted line is a miss the prefetcher
                # prevented: train it as a virtual miss so the chain of
                # predictions continues instead of starving once its own
                # promotions hide the miss stream.
                if self.prefetcher is not None:
                    self._run_prefetcher(MissEvent(index, tag, block, pc, is_write, now))
            if self._needs_access:
                requests = self.prefetcher.observe_access(  # type: ignore[union-attr]
                    AccessEvent(index, tag, block, pc, is_write, True, now)
                )
                if requests:
                    issue = self.issue_prefetch
                    launch = now + self._pf_delay
                    for request in requests:
                        issue(request, launch)
            return now + self._l1_latency

        # ----- L1 miss -------------------------------------------------
        stats.l1_misses += 1
        if self._needs_access:
            requests = self.prefetcher.observe_access(  # type: ignore[union-attr]
                AccessEvent(index, tag, block, pc, is_write, False, now)
            )
            if requests:
                issue = self.issue_prefetch
                launch = now + self._pf_delay
                for request in requests:
                    issue(request, launch)

        if self._promotions_enabled:
            pending = self._pending_l1.get(index)
            if pending is not None and pending[0] == block:
                # The demand beat the promotion; the normal fill below
                # supersedes it.  Promoting later would only displace
                # whatever replaced this block in the meantime.
                del self._pending_l1[index]

        mshr = self.mshr
        merged = mshr.lookup(block, now)
        if merged is not None:
            stats.mshr_merges += 1
            return merged

        start = mshr.acquire(now)
        stats.mshr_full_stalls = mshr.full_stalls

        # --- demand L2 fetch (inlined) --------------------------------
        request_start = self.l1l2_addr_bus.request(start + self._l1_latency, 0)
        arrival = request_start + 1
        stats.l2_demand_accesses += 1

        l2_block = block >> self._l2_shift
        l2_index = l2_block & self._l2_index_mask
        l2_tag = l2_block >> self._l2_index_bits

        l2_line = self.l2d.lookup(l2_index, l2_tag, False, arrival)
        if l2_line is not None or self._ideal_l2:
            stats.l2_demand_hits += 1
            data_ready = arrival + self._l2_latency
            if l2_line is not None:
                if l2_line.prefetched:
                    l2_line.prefetched = False
                    stats.prefetched_original += 1
                    stats.useful_prefetches += 1
                if l2_line.fill_time > arrival:
                    # Prefetch (or earlier demand fill) still in flight:
                    # the demand merges with it.
                    if l2_line.fill_time > data_ready:
                        data_ready = l2_line.fill_time
        else:
            # ----- L2 miss: fetch from main memory --------------------
            stats.l2_demand_misses += 1
            data_ready = self.memory.fetch(arrival + self._l2_latency, self._l2_block_bytes)
            self._fill_l2(l2_index, l2_tag, data_ready, prefetched=False)

        # Data return to L1 over the L1/L2 data channel.
        completion = self.l1l2_data_bus.transfer(data_ready, self._l1_block_bytes)
        mshr.register(block, completion, now)

        self._fill_l1(index, tag, completion, prefetched=False, dirty=is_write)

        if self.prefetcher is not None:
            self._run_prefetcher(MissEvent(index, tag, block, pc, is_write, now))
        return completion

    def access(
        self,
        now: float,
        index: int,
        tag: int,
        block: int,
        is_write: bool,
        pc: int,
    ) -> AccessOutcome:
        """Structured demand access: classify and return an outcome.

        Same semantics as :meth:`access_time`; the hit classification
        is read off the counter deltas (an MSHR merge moves neither the
        L1-hit nor the L2-miss counter, so it reports ``l1_hit=False,
        l2_hit=True`` — the demand rode an earlier fetch and never
        re-accessed L2, matching the Figure 12 accounting).
        """
        stats = self.stats
        l1_hits_before = stats.l1_hits
        l2_misses_before = stats.l2_demand_misses
        completion = self.access_time(now, index, tag, block, is_write, pc)
        return AccessOutcome(
            completion,
            stats.l1_hits != l1_hits_before,
            stats.l2_demand_misses == l2_misses_before,
        )

    def _fill_l1(
        self, index: int, tag: int, now: float, prefetched: bool, dirty: bool
    ) -> None:
        """Install a block in L1D, handling eviction side effects."""
        lines = self._l1_lines
        if lines is not None:
            # Direct-mapped fill inlined (the semantics of
            # SetAssociativeCache.fill): refresh a resident line, else
            # replace the single way and handle the victim directly —
            # no Eviction wrapper on this per-miss path.
            victim = lines[index]
            if victim is not None and victim.tag == tag:
                victim.last_access = now
                victim.dirty = victim.dirty or dirty
                return
            lines[index] = CacheLine(tag, now, dirty=dirty, prefetched=prefetched)
            if victim is None:
                return
        else:
            eviction = self.l1d.fill(
                index, tag, now, prefetched=prefetched, dirty=dirty
            )
            if eviction is None:
                return
            victim = eviction.line
        if victim.dirty:
            self.stats.writebacks_l1 += 1
            self.l1l2_data_bus.request(now, self._l1_block_bytes)
        if self._needs_evict:
            block = (victim.tag << self._l1_index_bits) | index
            self.prefetcher.observe_eviction(  # type: ignore[union-attr]
                EvictionEvent(
                    index, victim.tag, block, now, victim.fill_time, victim.last_access
                )
            )

    def _fill_l2(self, index: int, tag: int, now: float, prefetched: bool) -> None:
        """Install a block in L2D, handling eviction side effects.

        Prefetch fills insert at the LRU position (low-priority
        insertion): a wrong prefetch is the first thing evicted instead
        of displacing the demand working set's recency order.
        """
        lru_insert = prefetched and self.params.prefetch_insert_policy == "lru"
        eviction = self.l2d.fill(index, tag, now, prefetched=prefetched,
                                 lru_insert=lru_insert)
        if eviction is None:
            return
        if eviction.line.prefetched:
            self.stats.prefetch_evicted_unused += 1
        if eviction.dirty:
            self.stats.writebacks_l2 += 1
            self.memory.writeback(now, self._l2_block_bytes)

    # ------------------------------------------------------------------
    # Instruction fetch path
    # ------------------------------------------------------------------

    def instruction_fetch(self, now: float, pc: int) -> float:
        """Fetch the instruction block holding ``pc``.

        Returns the extra frontend latency (0 for the common sequential
        hit).  Instruction misses go to the dedicated L2I (Table 1 has
        separate 1 MB L2 I and D caches) and then to memory.
        """
        p = self.params
        block = pc >> p.l1i.offset_bits
        if block == self._last_ifetch_block:
            return 0.0
        self._last_ifetch_block = block
        self.stats.ifetch_accesses += 1
        index = block & (p.l1i.sets - 1)
        tag = block >> p.l1i.index_bits
        if self.l1i.lookup(index, tag, False, now) is not None:
            return 0.0
        self.stats.ifetch_misses += 1
        l2_block = block >> self._l2_shift
        l2_index = l2_block & self._l2_index_mask
        l2_tag = l2_block >> self._l2_index_bits
        arrival = self.l1l2_addr_bus.request(now, 0) + 1
        if self.l2i.lookup(l2_index, l2_tag, False, arrival) is not None:
            ready = arrival + p.l2_hit_latency
        else:
            ready = self.memory.fetch(arrival + p.l2_hit_latency, p.l2.block_bytes)
            self.l2i.fill(l2_index, l2_tag, ready)
        self.l1i.fill(index, tag, ready)
        return max(0.0, ready - now)

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------

    def _run_prefetcher(self, miss: MissEvent) -> None:
        """Feed one miss to the prefetcher and issue what it predicts."""
        requests = self.prefetcher.observe_miss(miss)  # type: ignore[union-attr]
        if not requests:
            return
        launch = miss.now + self._pf_delay
        for request in requests:
            self.issue_prefetch(request, launch)

    def issue_prefetch(self, request: PrefetchRequest, now: float) -> bool:
        """Issue one prefetch into L2; returns True if a fetch started.

        The request is dropped (with accounting) when the target is
        already resident or in flight, or when the outstanding-prefetch
        queue is full.
        """
        p = self.params
        stats = self.stats
        stats.prefetches_requested += 1
        l1_block = request.block
        l2_block = l1_block >> self._l2_shift
        l2_index = l2_block & self._l2_index_mask
        l2_tag = l2_block >> self._l2_index_bits

        resident = self.l2d.probe(l2_index, l2_tag)
        if resident is not None:
            stats.prefetch_redundant += 1
            if request.into_l1 and self._promotions_enabled:
                # Already in L2 — only the L1 promotion remains useful.
                ready = max(now, resident.fill_time)
                self._pending_l1[l1_block & self._l1_set_mask] = (l1_block, ready)
            return False

        inflight = self._pf_inflight
        if inflight:
            self._pf_inflight = inflight = [t for t in inflight if t > now]
        if len(inflight) >= p.max_outstanding_prefetches:
            stats.prefetch_dropped_queue += 1
            return False
        # The prefetch's data return would want the memory data channel
        # around now + command + array latency; anything booked beyond
        # that horizon is genuine backlog from demand traffic, and a
        # low-priority prefetch yields to it (Section 5.2.2).
        if self.memory.backlog(now) > p.prefetch_busy_threshold:
            stats.prefetch_dropped_busy += 1
            return False

        # The predictor sits at the L2 controller (Figure 10); an
        # L2-only prefetch touches just the L2/memory link.
        done = self.memory.fetch(now + self._l2_latency, self._l2_block_bytes)
        inflight.append(done)
        stats.prefetches_issued += 1
        self._fill_l2(l2_index, l2_tag, done, prefetched=True)
        if request.into_l1 and self._promotions_enabled:
            self._pending_l1[l1_block & self._l1_set_mask] = (l1_block, done)
        return True

    def _try_promote(self, index: int, now: float) -> None:
        """Attempt the pending L2→L1 promotion for set ``index``.

        The promotion happens only when the prefetched data has arrived
        in L2 and the dead-block gate approves evicting the current L1
        victim (Section 5.2.2: "update L1 only after the corresponding
        cache line is predicted dead").
        """
        pending = self._pending_l1.get(index)
        if pending is None:
            return
        l1_block, ready = pending
        if ready > now:
            return
        p = self.params
        if now - ready > p.promotion_ttl:
            del self._pending_l1[index]
            return
        l2_block = l1_block >> self._l2_shift
        l2_index = l2_block & self._l2_index_mask
        l2_tag = l2_block >> self._l2_index_bits
        if self.l2d.probe(l2_index, l2_tag) is None:
            del self._pending_l1[index]
            return
        tag = l1_block >> self._l1_index_bits
        if self.l1d.probe(index, tag) is not None:
            del self._pending_l1[index]
            return
        victim = self.l1d.victim_line(index)
        if victim is not None and not self._l1_gate(victim, index, now):  # type: ignore[misc]
            return  # victim still live; retry on a later access
        # The promotion reads the block out of L2: refresh its recency
        # and consume the prefetch bit (the prefetch is now useful).
        l2_line = self.l2d.lookup(l2_index, l2_tag, False, now)
        if l2_line is not None and l2_line.prefetched:
            l2_line.prefetched = False
            self.stats.useful_prefetches += 1
        bus = self.prefetch_bus if self.prefetch_bus is not None else self.l1l2_data_bus
        self._fill_l1(index, tag, bus.transfer(now, self._l1_block_bytes), prefetched=True, dirty=False)
        self.stats.l1_promotions += 1
        del self._pending_l1[index]

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------

    def mark_warmup_end(self) -> None:
        """Snapshot the counters; ``measured_stats`` subtracts them."""
        self.warmup_stats = self.stats.snapshot()

    def measured_stats(self) -> HierarchyStats:
        """Counters for the measurement window (post-warmup)."""
        if self.warmup_stats is None:
            return self.stats
        return self.stats.since(self.warmup_stats)

    def finalize(self) -> None:
        """Account for prefetched blocks still unused at end of run."""
        residual = 0
        for index in range(self.params.l2.sets):
            for line in self.l2d.resident_lines(index):
                if line.prefetched:
                    residual += 1
        self.stats.prefetch_residual_unused += residual

    def reset(self) -> None:
        """Re-create all state for a fresh run (same configuration)."""
        self.__init__(self.params)  # type: ignore[misc]
