"""Regenerate Figure 11 + the Section 5.1 headline numbers.

The paper's main result: an 8 KB tag-correlating PHT outperforms a
2 MB address+PC-correlating DBCP suite-wide (≈14% vs ≈7% IPC
improvement), with TCP-8M as the idealised no-sharing reference.
"""

from conftest import run_once

from repro.experiments import run_experiment
from repro.util.tables import format_barchart


def test_fig11_tcp_vs_dbcp(benchmark, scale, strict):
    result = run_once(benchmark, run_experiment, "fig11", scale)
    print()
    print(result.render())
    print()
    print(format_barchart(result.series["tcp-8k"],
                          title="TCP-8K IPC improvement (%)", unit="%"))

    geomeans = result.series["geomean"]
    if strict:
        # Headline: the 8KB table beats the 2MB table suite-wide.
        assert geomeans["tcp-8k"] > geomeans["dbcp-2m"], geomeans
        assert geomeans["tcp-8k"] > 5.0, geomeans
        # Sharing winners and losers both exist (paper Section 5.1).
        tcp8k, tcp8m = result.series["tcp-8k"], result.series["tcp-8m"]
        prefers_shared = [n for n in tcp8k if tcp8k[n] > tcp8m[n] + 1.0]
        prefers_private = [n for n in tcp8k if tcp8m[n] > tcp8k[n] + 1.0]
        assert prefers_shared, "no benchmark benefits from PHT sharing"
        assert prefers_private, "no benchmark benefits from private history"
        # The serialized pointer chase (mcf-analogue) needs private
        # history, exactly as in the paper.
        assert "mcf" in prefers_private
    else:
        assert geomeans["tcp-8k"] == geomeans["tcp-8k"]  # ran to completion
