"""A small associative set with true-LRU replacement.

Both the caches (:mod:`repro.memory.cache`) and the pattern history
tables (:mod:`repro.core.pht`) are organised as arrays of small
associative sets.  ``LRUSet`` is the shared building block: a bounded
key/value mapping where inserting beyond capacity evicts the least
recently *used* entry.

The implementation rides on :class:`dict` insertion order (guaranteed
since CPython 3.7): the first key is always the LRU entry and
``move_to_end`` is emulated with a delete/re-insert, which is the
fastest portable approach for the small associativities (4–16 ways)
used here.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")

__all__ = ["LRUSet"]


class LRUSet(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    ways:
        Maximum number of entries (the associativity).  Must be
        positive.
    """

    __slots__ = ("ways", "_entries")

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError(f"associativity must be positive, got {ways}")
        self.ways = ways
        self._entries: Dict[K, V] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        """Iterate keys from least to most recently used."""
        return iter(self._entries)

    def get(self, key: K) -> Optional[V]:
        """Return the value for ``key`` and promote it to MRU.

        Returns None when the key is absent.  Promotion on read models
        the usual cache behaviour where any touch refreshes recency.
        """
        entries = self._entries
        value = entries.get(key)
        if value is None and key not in entries:
            return None
        del entries[key]
        entries[key] = value  # type: ignore[assignment]
        return value

    def peek(self, key: K) -> Optional[V]:
        """Return the value for ``key`` WITHOUT changing recency.

        Used by probes that must not disturb replacement state, e.g.
        checking whether a prefetch target is already resident.
        """
        return self._entries.get(key)

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert or update ``key`` and promote it to MRU.

        Returns the evicted ``(key, value)`` pair when the insertion
        displaced the LRU entry, else None.
        """
        entries = self._entries
        if key in entries:
            del entries[key]
            entries[key] = value
            return None
        victim = None
        if len(entries) >= self.ways:
            victim_key = next(iter(entries))
            victim = (victim_key, entries.pop(victim_key))
        entries[key] = value
        return victim

    def put_lru(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert ``key`` at the LRU (next-to-evict) position.

        Used for low-priority fills — e.g. prefetched cache blocks that
        should not displace the demand working set's recency: if the
        prefetch was useless, it is the first thing evicted.  Updating
        an existing key keeps its current recency.  Returns the evicted
        pair, if any.
        """
        entries = self._entries
        if key in entries:
            entries[key] = value
            return None
        victim = None
        if len(entries) >= self.ways:
            victim_key = next(iter(entries))
            victim = (victim_key, entries.pop(victim_key))
        self._entries = {key: value, **entries}
        return victim

    def pop(self, key: K) -> Optional[V]:
        """Remove ``key`` and return its value (None when absent)."""
        return self._entries.pop(key, None)

    def victim_key(self) -> Optional[K]:
        """Return the key that would be evicted next (the LRU key)."""
        if not self._entries:
            return None
        return next(iter(self._entries))

    def touch(self, key: K) -> bool:
        """Promote ``key`` to MRU without reading it.

        Returns False when the key is absent.
        """
        entries = self._entries
        if key not in entries:
            return False
        entries[key] = entries.pop(key)
        return True

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate ``(key, value)`` pairs from LRU to MRU."""
        return iter(self._entries.items())

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
