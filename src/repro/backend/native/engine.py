"""Batch-stepping core loop with the *compiled* scalar epilogue.

:class:`NativeCore` keeps the numpy engine's batch path verbatim —
whole-trace planes, predicted-hit runs stepped as vectorised batches,
post-hoc window/LSQ verification (see
:mod:`repro.backend.vector.engine` for the full methodology) — and
replaces the interpreted scalar epilogue with
:class:`repro.backend.native._native.Engine`: a C extension that runs
the flattened per-access miss path (lazy-deletion MSHR heap, THT
running-sum history, PHT truncated-add indexing, L2 set probe/fill/
LRU, prefetch issue) directly on the live Python containers, with the
trace planes, L1D state, and completion/commit timelines shared as
numpy buffers.  The C code performs the same IEEE double operations in
the same order as the reference loop, so results stay bit-identical;
the only Python re-entries are instruction-fetch misses, generic
(non-TCP) prefetcher hooks, and L1 eviction events.

Scalar stretches are handed to C as *ranges*: every batch cut or
predicted-miss cluster becomes one ``Engine.step(i, limit, ...)``
call, so the per-access cost of the epilogue drops from ~3-6 µs of
CPython interpretation to the C state machine plus one call per
stretch.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence

import numpy as np

from repro.backend.native import build
from repro.backend.vector.engine import (
    DEFAULT_VECTOR_MIN,
    VECTOR_RECURRENCE_MIN,
    _engine_stats,
    _trace_planes,
)
from repro.core.indexing import IndexFunction
from repro.core.tcp import TagCorrelatingPrefetcher
from repro.cpu.core import CoreParams, CoreResult
from repro.engine.events import EvictionEvent, MissEvent
from repro.engine.probes import CoreMark, Probe, resolve_probes
from repro.memory.cache import CacheLine
from repro.memory.hierarchy import MemoryHierarchy
from repro.util.bitops import index_geometry
from repro.workloads.trace import Trace

__all__ = ["NativeCore"]


class NativeCore:
    """Bit-exact batch-stepping core with a compiled scalar epilogue.

    Valid for the same configurations as ``VectorCore`` (direct-mapped
    L1D, no access-stream observers, no L1 promotions, set-associative
    L2); requires the ``_native`` extension to be importable (see
    :mod:`repro.backend.native.build`).
    """

    def __init__(
        self, params: CoreParams = CoreParams(), vector_min: int = DEFAULT_VECTOR_MIN
    ) -> None:
        if vector_min < 2:
            raise ValueError(f"vector_min must be at least 2, got {vector_min}")
        self.params = params
        self.vector_min = vector_min
        self.engine_stats = _engine_stats()

    def run(
        self,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        warmup: int = 0,
        probes: Optional[Sequence[Probe]] = None,
    ) -> CoreResult:
        native = build.load()
        if native is None:
            raise RuntimeError(
                f"native extension unavailable: {build.load_error()}"
            )
        params = self.params
        n = len(trace)
        if not 0 <= warmup < max(n, 1):
            raise ValueError(f"warmup ({warmup}) must be < trace length ({n})")
        if n == 0:
            return CoreResult(0, 0.0, 0)
        if hierarchy._l1_lines is None:
            raise ValueError("NativeCore requires a direct-mapped L1D")
        if hierarchy._needs_access or hierarchy._promotions_enabled:
            raise ValueError(
                "NativeCore cannot model access-stream observers or L1 "
                "promotions (use the python backend)"
            )
        if hierarchy.l2d._direct_mapped:
            raise ValueError("NativeCore requires a set-associative L2")
        active_probes = resolve_probes(None, 2048, None, probes)
        stats = self.engine_stats = _engine_stats()
        stats["epilogue_ns"] = 0

        # ---- whole-trace planes (shared with the numpy backend) -----
        geometry = hierarchy.params.l1d
        planes = _trace_planes(trace, hierarchy)
        indices_arr = planes["indices_arr"]
        instr_arr = planes["instr_arr"]
        load_arr = planes["load_arr"]
        store_arr = planes["store_arr"]
        arange_f = planes["arange_f"]
        miss_pos = planes["miss_pos"]
        n_miss = len(miss_pos)
        dep_nz = planes["dep_nz"]
        n_dep_nz = len(dep_nz)
        instr_l = planes["instr_l"]
        deps_l = planes["deps_l"]
        load_l = planes["load_l"]
        pcs_l = planes["pcs_l"]

        dispatch_rate = min(float(params.issue_width), trace.base_ipc)
        cached_incs = planes["incs"].get(dispatch_rate)
        if cached_incs is None:
            incs_arr = planes["steps_f"] / dispatch_rate
            cached_incs = (incs_arr, incs_arr.tolist())
            planes["incs"][dispatch_rate] = cached_incs
        incs_arr, _ = cached_incs

        model_icache = hierarchy.params.model_icache
        if model_icache:
            fb_l = planes["fb_l"]
            if fb_l[0] == hierarchy._last_ifetch_block:
                change_pos = planes["change_rest"]
            else:
                change_pos = [0] + planes["change_rest"]
        else:
            fb_l = []
            change_pos = []
        n_changes = len(change_pos)

        # Full-length completion/commit timelines, shared with C.
        completions_np = np.zeros(n, dtype=np.float64)
        commits_np = np.zeros(n, dtype=np.float64)

        # ---- L1D state planes + L1I residency -----------------------
        l1_lines = hierarchy._l1_lines
        n_sets = geometry.sets
        tag_arr = np.full(n_sets, -1, dtype=np.int64)
        la_arr = np.zeros(n_sets, dtype=np.float64)
        dirty_arr = np.zeros(n_sets, dtype=np.uint8)
        ft_arr = np.zeros(n_sets, dtype=np.float64)
        for s2, line in enumerate(l1_lines):
            if line is not None:
                tag_arr[s2] = line.tag
                la_arr[s2] = line.last_access
                dirty_arr[s2] = line.dirty
                ft_arr[s2] = line.fill_time
        poisoned: set = set()

        l1i = hierarchy.l1i
        l1i_lookup = l1i.lookup
        l1i_bits, l1i_mask = index_geometry(hierarchy.params.l1i.sets)
        resident: set = set()  # L1I-resident fetch blocks (shared with C)
        last_fb = hierarchy._last_ifetch_block

        hier_stats = hierarchy.stats
        hp = hierarchy.params
        mshr = hierarchy.mshr
        l2_sets = hierarchy.l2d._sets
        l2_entries = [lru_._entries for lru_ in l2_sets]
        l1_ib = hierarchy._l1_index_bits

        prefetcher = hierarchy.prefetcher
        needs_evict = hierarchy._needs_evict
        observe_evict = prefetcher.observe_eviction if prefetcher else None
        observe_miss = prefetcher.observe_miss if prefetcher else None
        tcp_fast = (
            type(prefetcher) is TagCorrelatingPrefetcher
            and prefetcher.pht.config.index_function is IndexFunction.TRUNCATED_ADD
            and not prefetcher.into_l1
        )
        if tcp_fast:
            tht = prefetcher.tht
            pht = prefetcher.pht
            pstats = prefetcher.stats
            tht_hist = tht._history
            tht_sums_arr = np.array(
                [sum(r_) for r_ in tht_hist], dtype=np.int64
            )
            scheme = pht._scheme
            spec_tcp = {
                "pht_sets": pht._sets,
                "tht_hist": tht_hist,
                "tht_sums": tht_sums_arr,
                "seq_mask": scheme._sequence_mask,
                "miss_mask": scheme._miss_mask,
                "n_bits": scheme.miss_index_bits,
                "tht_ib": tht.index_bits,
                "pht_ways": pht.config.ways,
                "pht_targets": pht.config.targets,
            }
        else:
            tht_hist = None
            tht_sums_arr = None
            spec_tcp = {
                "pht_sets": None,
                "tht_hist": None,
                "tht_sums": None,
                "seq_mask": 0,
                "miss_mask": 0,
                "n_bits": 0,
                "tht_ib": 0,
                "pht_ways": 0,
                "pht_targets": 0,
            }

        spec = {
            # trace planes
            "idx": indices_arr,
            "instr": instr_arr,
            "blocks": planes["blocks_arr"],
            "tags": planes["tags_arr"],
            "deps": planes["deps_arr"],
            "load": load_arr.view(np.uint8),
            "incs": incs_arr,
            "l2i": planes["l2i_arr"],
            "l2t": planes["l2t_arr"],
            "fb": planes["fb_arr"] if model_icache else None,
            # timelines + L1 planes
            "completions": completions_np,
            "commits": commits_np,
            "l1_tag": tag_arr,
            "l1_la": la_arr,
            "l1_ft": ft_arr,
            "l1_dirty": dirty_arr,
            # live containers
            "msh_inf": mshr._inflight,
            "mem_comp": hierarchy.memory._completions,
            "pf_inflight": hierarchy._pf_inflight,
            "l2_entries": l2_entries,
            "l2_sets": l2_sets,
            "poisoned": poisoned,
            "resident": resident,
            "cacheline": CacheLine,
            "l1i_lookup": l1i_lookup,
            "ab": hierarchy.l1l2_addr_bus,
            "db": hierarchy.l1l2_data_bus,
            "mab": hierarchy.mem_addr_bus,
            "mdb": hierarchy.mem_data_bus,
            "mshr": mshr,
            "memory": hierarchy.memory,
            "hierarchy": hierarchy,
            # machine scalars
            "window": params.window,
            "lsq": params.lsq,
            "ls_s": 1.0 / params.ls_units,
            "inv_cr": 1.0 / float(params.issue_width),
            "l1_lat": hierarchy._l1_latency,
            "l2_lat": hierarchy._l2_latency,
            "l1_beats": -(-hp.l1d.block_bytes // hp.l1l2_bus_bytes_per_cycle),
            "mem_beats": -(-hp.l2.block_bytes // hp.mem_bus_bytes_per_cycle),
            "mem_lat": hp.memory_latency,
            "mem_maxc": hp.memory_concurrency,
            "msh_entries": mshr.entries,
            "l2_ways": hp.l2.ways,
            "l2_shift": hierarchy._l2_shift,
            "l2_imask": hierarchy._l2_index_mask,
            "l2_ibits": hierarchy._l2_index_bits,
            "l1_ib": l1_ib,
            "l1i_mask": l1i_mask,
            "l1i_bits": l1i_bits,
            "pf_delay": hierarchy._pf_delay,
            "pf_max": hp.max_outstanding_prefetches,
            "pf_busy_thr": float(hp.prefetch_busy_threshold),
            "lru_pf": int(hp.prefetch_insert_policy == "lru"),
            "ideal_l2": int(hierarchy._ideal_l2),
            "model_icache": int(model_icache),
            "tcp_fast": int(tcp_fast),
            "has_prefetcher": int(prefetcher is not None),
            "needs_evict": int(needs_evict),
        }
        spec.update(spec_tcp)
        eng = native.Engine(spec)

        ifetch = hierarchy.instruction_fetch

        def ifetch_cb(nd_now: float, i_now: int) -> float:
            # The hierarchy's sequential-fetch tracker is stale (batched
            # and compiled steps bypass it); clear it so the real fetch
            # never early-outs.  Component state was synced by C.
            hierarchy._last_ifetch_block = -1
            pen = ifetch(nd_now, pcs_l[i_now])
            fb = fb_l[i_now]
            ii = fb & l1i_mask
            keep = [b for b in resident if (b & l1i_mask) != ii]
            resident.clear()
            resident.update(keep)
            for ln in l1i.resident_lines(ii):
                resident.add((ln.tag << l1i_bits) | ii)
            return pen

        def observe_cb(s, tag, block, i_now, store, v):
            requests = observe_miss(
                MissEvent(s, tag, block, pcs_l[i_now], store, v)
            )
            if not requests:
                return None
            return [req.block for req in requests]

        def evict_cb(s, vt, comp, old_ft, old_la):
            observe_evict(
                EvictionEvent(s, vt, (vt << l1_ib) | s, comp, old_ft, old_la)
            )

        eng.set_callbacks(ifetch_cb, observe_cb, evict_cb)
        eng.sync_in()

        # ---- core loop state ----------------------------------------
        window = params.window
        lsq = params.lsq
        ls_s = 1.0 / params.ls_units
        inv_cr = 1.0 / float(params.issue_width)
        l1_lat = hierarchy._l1_latency
        l1_lat_f = float(l1_lat)
        nd = float(params.frontend_depth)
        li = 0.0
        lc = 0.0
        P = 0
        warmup_instr = 0
        warmup_commit = 0.0
        warmup_pending = bool(warmup)

        if active_probes:
            mark_interval = min(probe.interval for probe in active_probes)
            next_mark = mark_interval
        else:
            mark_interval = 0
            next_mark = n + 1

        # Batch-path stat deltas (the compiled epilogue keeps its own;
        # both are flushed together at every span boundary).
        dc = ldc = stc = hc = ifc = 0

        def flush_stats() -> None:
            nonlocal dc, ldc, stc, hc, ifc
            if dc:
                hier_stats.demand_accesses += dc
                hier_stats.loads += ldc
                hier_stats.stores += stc
                hier_stats.l1_hits += hc
                dc = ldc = stc = hc = 0
            if ifc:
                hier_stats.ifetch_accesses += ifc
                ifc = 0
            d = eng.take_stats()
            if d["demand"]:
                hier_stats.demand_accesses += d["demand"]
                hier_stats.loads += d["loads"]
                hier_stats.stores += d["stores"]
                hier_stats.l1_hits += d["hits"]
            if d["ifetch"]:
                hier_stats.ifetch_accesses += d["ifetch"]
            if d["l1m"]:
                hier_stats.l1_misses += d["l1m"]
                hier_stats.l2_demand_accesses += d["l2a"]
                hier_stats.l2_demand_hits += d["l2h"]
                hier_stats.l2_demand_misses += d["l2m"]
                hier_stats.prefetched_original += d["pfo"]
                hier_stats.useful_prefetches += d["useful"]
                hier_stats.mshr_merges += d["mgd"]
                hier_stats.writebacks_l1 += d["wb1"]
                hier_stats.writebacks_l2 += d["wb2"]
                hier_stats.prefetches_requested += d["pfr"]
                hier_stats.prefetches_issued += d["pfi"]
                hier_stats.prefetch_redundant += d["pfred"]
                hier_stats.prefetch_dropped_queue += d["pfdq"]
                hier_stats.prefetch_dropped_busy += d["pfdb"]
                hier_stats.prefetch_evicted_unused += d["pfev"]
                if tcp_fast:
                    pstats.lookups += d["pfl"]
                    pstats.updates += d["pfu"]
                    pstats.predictions += d["pfp"]
                    tht.reads += d["tl"]
                    tht.pushes += d["tp"]
                    pht.updates += d["pu"]
                    pht.lookups += d["pl"]
                    pht.hits += d["ph"]
            # The reference assigns this from the MSHR file counter on
            # every primary miss; mirroring at the flush is idempotent.
            hier_stats.mshr_full_stalls = d["mshr_full_stalls"]
            stats["scalar_accesses"] += d["sc"]
            if d["poisoned_peak"] > stats["poisoned_sets_peak"]:
                stats["poisoned_sets_peak"] = d["poisoned_peak"]
            stats["epilogue_ns"] = d["epi_ns"]

        def sync_planes() -> None:
            tl_ = tag_arr.tolist()
            lal_ = la_arr.tolist()
            ftl_ = ft_arr.tolist()
            dl_ = dirty_arr.tolist()
            for s2 in range(n_sets):
                t2 = tl_[s2]
                if t2 < 0:
                    continue
                line = l1_lines[s2]
                if line is None or line.tag != t2:
                    line = CacheLine(t2, ftl_[s2], dirty=bool(dl_[s2]))
                    line.last_access = lal_[s2]
                    l1_lines[s2] = line
                else:
                    line.fill_time = ftl_[s2]
                    line.last_access = lal_[s2]
                    line.dirty = bool(dl_[s2])

        def reload_derived() -> None:
            # Mirrors VectorCore.load_shared's derived-cache rebuilds:
            # probes may have mutated the live containers, so the per-
            # set dict cache and THT running sums are recomputed (in
            # place — the C engine holds references to both).
            eng.sync_in()
            l2_entries[:] = [lru_._entries for lru_ in l2_sets]
            if tcp_fast:
                tht_sums_arr[:] = [sum(r_) for r_ in tht_hist]

        vec_min = self.vector_min
        vec_ok = True
        vec_fails = 0
        m_ptr = 0
        no_vec_until = 0
        i = 0

        while True:
            stop = n
            if warmup_pending and i < warmup:
                stop = warmup
            if next_mark < stop:
                stop = next_mark

            # ================= span [i, stop) ========================
            while i < stop:
                # ---- batch attempt (identical to VectorCore) ----
                if i >= no_vec_until:
                    while m_ptr < n_miss and miss_pos[m_ptr] < i:
                        m_ptr += 1
                    r0 = miss_pos[m_ptr] if m_ptr < n_miss else n
                    if r0 > stop:
                        r0 = stop
                    if poisoned and r0 - i >= vec_min:
                        bad = np.isin(
                            indices_arr[i:r0],
                            np.fromiter(poisoned, dtype=np.int64, count=len(poisoned)),
                        )
                        if bad.any():
                            r0 = i + int(np.argmax(bad))
                    seg_changes = []
                    ifetch_cut = False
                    if model_icache and r0 - i >= vec_min:
                        a = bisect_left(change_pos, i)
                        while a < n_changes:
                            pos = change_pos[a]
                            if pos >= r0:
                                break
                            if fb_l[pos] not in resident:
                                r0 = pos
                                ifetch_cut = True
                                break
                            seg_changes.append(pos)
                            a += 1
                    if r0 - i >= vec_min:
                        p = i
                        seg = r0 - p
                        d = incs_arr[p:r0].copy()
                        d[0] += nd
                        np.cumsum(d, out=d)
                        d_l = d.tolist()
                        li0 = li
                        lc0 = lc
                        done_vec = False
                        if vec_ok and seg >= VECTOR_RECURRENCE_MIN:
                            a2 = bisect_left(dep_nz, p)
                            if a2 >= n_dep_nz or dep_nz[a2] >= r0:
                                off = arange_f[:seg] * ls_s
                                u = d - off
                                seed = li + ls_s
                                if seed > u[0]:
                                    u[0] = seed
                                np.maximum.accumulate(u, out=u)
                                iss_v = u + off
                                comp_v = iss_v + np.where(
                                    load_arr[p:r0], l1_lat_f, 1.0
                                )
                                chk = np.empty(seg)
                                chk[0] = li
                                chk[1:] = iss_v[:-1]
                                chk += ls_s
                                np.maximum(chk, d, out=chk)
                                if np.array_equal(iss_v, chk):
                                    offc = arange_f[:seg] * inv_cr
                                    uc = comp_v - offc
                                    seedc = lc + inv_cr
                                    if seedc > uc[0]:
                                        uc[0] = seedc
                                    np.maximum.accumulate(uc, out=uc)
                                    cmt_v = uc + offc
                                    chk[0] = lc
                                    chk[1:] = cmt_v[:-1]
                                    chk += inv_cr
                                    np.maximum(chk, comp_v, out=chk)
                                    if np.array_equal(cmt_v, chk):
                                        iss_seg = iss_v.tolist()
                                        comp_seg = comp_v.tolist()
                                        cmt_seg = cmt_v.tolist()
                                        li = iss_seg[-1]
                                        lc = cmt_seg[-1]
                                        done_vec = True
                                        stats["vector_batches"] += 1
                                if not done_vec:
                                    vec_fails += 1
                                    stats["vector_fallbacks"] += 1
                                    if vec_fails >= 2:
                                        vec_ok = False
                        if not done_vec:
                            dep_seg = deps_l[p:r0]
                            load_seg = load_l[p:r0]
                            iss_seg = []
                            comp_seg = []
                            cmt_seg = []
                            ap_i = iss_seg.append
                            ap_c = comp_seg.append
                            ap_m = cmt_seg.append
                            for j in range(seg):
                                v = li + ls_s
                                dv = d_l[j]
                                if dv > v:
                                    v = dv
                                dep = dep_seg[j]
                                if dep:
                                    jj = j - dep
                                    c = (
                                        comp_seg[jj]
                                        if jj >= 0
                                        else float(completions_np[p + jj])
                                    )
                                    if c > v:
                                        v = c
                                li = v
                                ap_i(v)
                                if load_seg[j]:
                                    c = v + l1_lat
                                else:
                                    c = v + 1.0
                                ap_c(c)
                                m = lc + inv_cr
                                if c > m:
                                    m = c
                                lc = m
                                ap_m(m)
                        if done_vec:
                            commits_np[p:r0] = cmt_v
                        else:
                            commits_np[p:r0] = cmt_seg
                        floors = instr_arr[p:r0] - window
                        js = np.searchsorted(instr_arr[:r0], floors, side="right")
                        js -= 1
                        prev = np.empty(seg, dtype=np.int64)
                        prev[0] = P - 1
                        prev[1:] = js[:-1]
                        np.maximum(prev, P - 1, out=prev)
                        elig = js > prev
                        cut = seg
                        cut_kind = 0
                        if elig.any():
                            cand = np.flatnonzero(elig)
                            lifted = commits_np[js[cand]] > d[cand]
                            if lifted.any():
                                cut = int(cand[np.argmax(lifted)])
                                cut_kind = 1
                        j0 = lsq if p < lsq else p
                        if j0 < r0:
                            lsq_viol = commits_np[j0 - lsq : r0 - lsq] > d[j0 - p :]
                            if lsq_viol.any():
                                lcut = (j0 - p) + int(np.argmax(lsq_viol))
                                if lcut < cut:
                                    cut = lcut
                                    cut_kind = 2
                        if cut == 0:
                            li = li0
                            lc = lc0
                            no_vec_until = p + 1
                            if cut_kind == 1:
                                stats["batch_cuts_window"] += 1
                            else:
                                stats["batch_cuts_lsq"] += 1
                            continue
                        k = cut
                        r = p + k
                        completions_np[p:r] = comp_seg[:k]
                        commits_np[p:r] = cmt_seg[:k]
                        if k < seg:
                            li = iss_seg[k - 1]
                            lc = cmt_seg[k - 1]
                            no_vec_until = r + 1
                            if cut_kind == 1:
                                stats["batch_cuts_window"] += 1
                            else:
                                stats["batch_cuts_lsq"] += 1
                        elif ifetch_cut:
                            no_vec_until = r + 1
                            stats["batch_cuts_ifetch"] += 1
                        nd = d_l[k - 1]
                        P_new = int(js[k - 1]) + 1
                        if P_new > P:
                            P = P_new
                        # ---- state planes + stats ---------------
                        si = indices_arr[p:r]
                        iss_np = iss_v[:k] if done_vec else np.asarray(iss_seg[:k])
                        # Fancy assignment with duplicate indices keeps
                        # the LAST value per index — the last touch each
                        # set needs (plane arrays are shared with C, so
                        # the write is direct).
                        la_arr[si] = iss_np
                        smask = store_arr[p:r]
                        nst = int(np.count_nonzero(smask))
                        if nst:
                            dirty_arr[si[smask]] = 1
                        dc += k
                        hc += k
                        stc += nst
                        ldc += k - nst
                        if seg_changes:
                            touched = {}
                            ch = 0
                            for pos in seg_changes:
                                if pos >= r:
                                    break
                                touched[fb_l[pos]] = pos
                                ch += 1
                            if ch:
                                ifc += ch
                                for b, pos in sorted(
                                    touched.items(), key=lambda kv: kv[1]
                                ):
                                    l1i_lookup(
                                        b & l1i_mask, b >> l1i_bits, False, d_l[pos - p]
                                    )
                        if model_icache:
                            last_fb = fb_l[r - 1]
                        stats["batched_accesses"] += k
                        stats["batches"] += 1
                        i = r
                        continue
                    # Short run: the whole stretch up to (and including)
                    # the predicted miss goes through the compiled
                    # epilogue as one range.
                    no_vec_until = r0 + 1 if r0 < stop else r0
                    if no_vec_until <= i:
                        no_vec_until = i + 1

                # ---- compiled scalar epilogue: one range --------
                limit = no_vec_until if no_vec_until > i else i + 1
                if limit > stop:
                    limit = stop
                li, lc, nd, P, last_fb = eng.step(
                    i, limit, li, lc, nd, P, last_fb
                )
                i = limit

            # ================= span boundary =========================
            if i == next_mark:
                flush_stats()
                sync_planes()
                eng.sync_out()
                next_mark += mark_interval
                mark = CoreMark(i, n, i - P, window, lc, nd)
                for probe in active_probes:
                    probe.on_mark(mark, hierarchy)
                # Re-read the mirrored scalars: a probe-side fault
                # injection may have rewritten component state, and the
                # reference loop would observe that immediately.
                reload_derived()
            if warmup_pending and i == warmup:
                warmup_pending = False
                flush_stats()
                warmup_instr = instr_l[warmup - 1]
                warmup_commit = lc
                hierarchy.mark_warmup_end()
            if i >= n:
                break

        flush_stats()
        sync_planes()
        eng.sync_out()
        total_instructions = trace.instruction_count
        trailing = total_instructions - instr_l[n - 1]
        measured_instructions = total_instructions - warmup_instr
        cycles = lc + trailing / dispatch_rate - warmup_commit
        return CoreResult(measured_instructions, cycles, n - warmup)
