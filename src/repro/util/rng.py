"""Deterministic random number generator construction.

Every stochastic component of the reproduction (workload generators,
tie-breaking policies under test) derives its randomness from a named
stream so that (a) two runs of any experiment produce identical numbers
and (b) changing one workload's parameters does not perturb another's
stream.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["make_rng", "stream_seed"]

#: Base seed for the whole repository.  Changing this regenerates every
#: synthetic trace; experiments record it so results are attributable.
GLOBAL_SEED = 0x7C93


def stream_seed(name: str, salt: int = 0) -> int:
    """Derive a stable 64-bit seed for the stream called ``name``.

    Uses CRC32 of the name (stable across Python processes, unlike
    ``hash()``) mixed with the global seed and an optional ``salt`` for
    families of related streams.
    """
    digest = zlib.crc32(name.encode("utf-8"))
    return (digest * 0x9E3779B1 + GLOBAL_SEED * 0x85EBCA77 + salt) & 0xFFFFFFFFFFFFFFFF


def make_rng(name: str, salt: int = 0) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` for stream ``name``.

    The generator is seeded deterministically from the stream name, so
    ``make_rng("swim")`` always yields the same sequence.
    """
    return np.random.default_rng(stream_seed(name, salt))
