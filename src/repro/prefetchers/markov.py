"""Markov prefetching (Joseph & Grunwald, ISCA 1997).

The paper's related work [9] and its Section 6 discussion of "number of
prefetch targets": a correlation table maps each miss *address* to the
addresses that followed it in the miss stream, kept in LRU order, and
prefetches the top ``targets`` of them on the next occurrence.

This is the canonical **address-based** correlating prefetcher: every
distinct miss block needs its own entry, which is exactly the storage
blow-up the paper's tag-based scheme avoids.  The table budget is
explicit so the TCP-vs-address-correlation comparisons in the benches
are budget-fair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.prefetchers.base import MissEvent, Prefetcher, PrefetchRequest
from repro.util.bitops import is_power_of_two
from repro.util.lruset import LRUSet

__all__ = ["MarkovConfig", "MarkovPrefetcher"]


@dataclass(frozen=True)
class MarkovConfig:
    """Markov correlation table geometry."""

    sets: int = 4096
    ways: int = 4
    #: successor slots per entry; prefetch all of them, MRU first.
    targets: int = 2
    #: bytes per successor slot (block address) plus per-entry tag.
    slot_bytes: int = 4
    tag_bytes: int = 4

    def __post_init__(self) -> None:
        if not is_power_of_two(self.sets):
            raise ValueError(f"table set count must be a power of two, got {self.sets}")
        if self.targets <= 0:
            raise ValueError(f"targets must be positive, got {self.targets}")

    @property
    def entries(self) -> int:
        return self.sets * self.ways


class _MarkovEntry:
    """Successor list in MRU order (index 0 = most recent successor)."""

    __slots__ = ("successors",)

    def __init__(self) -> None:
        self.successors: List[int] = []

    def record(self, successor: int, capacity: int) -> None:
        if successor in self.successors:
            self.successors.remove(successor)
        self.successors.insert(0, successor)
        del self.successors[capacity:]


class MarkovPrefetcher(Prefetcher):
    """Address-correlating Markov prefetcher with multi-target entries."""

    def __init__(self, config: MarkovConfig = MarkovConfig()) -> None:
        super().__init__("markov")
        self.config = config
        self._sets: List[LRUSet[int, _MarkovEntry]] = [
            LRUSet(config.ways) for _ in range(config.sets)
        ]
        self._previous_block: Optional[int] = None

    def _entry_for(self, block: int, create: bool) -> Optional[_MarkovEntry]:
        lru = self._sets[block & (self.config.sets - 1)]
        entry = lru.get(block)
        if entry is None and create:
            entry = _MarkovEntry()
            lru.put(block, entry)
        return entry

    def observe_miss(self, miss: MissEvent) -> List[PrefetchRequest]:
        self.stats.lookups += 1
        cfg = self.config

        # Learn: previous miss block -> this miss block.
        if self._previous_block is not None and self._previous_block != miss.block:
            entry = self._entry_for(self._previous_block, create=True)
            entry.record(miss.block, cfg.targets)  # type: ignore[union-attr]
            self.stats.updates += 1
        self._previous_block = miss.block

        # Predict: successors of this miss block.
        entry = self._entry_for(miss.block, create=False)
        if entry is None or not entry.successors:
            return []
        self.stats.predictions += len(entry.successors)
        return [PrefetchRequest(block) for block in entry.successors]

    def storage_bytes(self) -> int:
        cfg = self.config
        per_entry = cfg.tag_bytes + cfg.targets * cfg.slot_bytes
        return cfg.entries * per_entry

    def reset(self) -> None:
        super().reset()
        for lru in self._sets:
            lru.clear()
        self._previous_block = None
